//! Timed network fault injection: DC-pair partitions, gray (lossy/slow)
//! links, and asymmetric one-way latency overrides.
//!
//! A [`FaultSchedule`] is a list of timed, per-directed-region-pair link
//! effects that the engine consults on every routed message. The model is
//! deliberately *TCP-like* rather than packet-like, because every
//! protocol in this workspace assumes reliable FIFO links:
//!
//! * **Partition** — while a region pair is partitioned, messages are not
//!   lost: they are *buffered by the transport* and delivered after the
//!   heal (arrival = heal time + the usual sampled latency, still FIFO
//!   clamped). This matches long-lived TCP connections riding out an
//!   outage and lets convergence-after-heal be a meaningful metric.
//! * **Gray degradation** — each message independently suffers loss with
//!   the configured probability; a "lost" message is retransmitted after
//!   the link's RTO, so loss manifests as latency inflation (geometric in
//!   the loss probability, capped), never as silent drop. A constant
//!   per-message extra one-way latency models congested queues.
//! * **One-way override** — replaces the topology's base one-way latency
//!   for a directed region pair during a window, which is how asymmetric
//!   WANs (slow uplinks, hub-and-spoke detours) are expressed without
//!   breaking [`Topology`](crate::Topology)'s symmetric-RTT invariant.
//!
//! Effects are evaluated at each message's *departure* time (handler
//! completion): a message that left just before a partition started is
//! already "on the wire" and arrives normally. Overlapping effects on the
//! same directed pair combine as: blocked if any partition covers the
//! instant, extra latencies sum, the largest loss probability and RTO
//! win, and the latest-starting override supplies the base latency.
//!
//! Process pause/resume (the fourth fault class) is engine state, not
//! link state — see [`Simulation::pause_between`](crate::Simulation::pause_between).

use crate::SimTime;

/// A timed link effect on one directed region pair.
#[derive(Clone, Copy, Debug)]
struct RawEvent {
    from: usize,
    to: usize,
    window: (SimTime, SimTime),
    effect: Effect,
}

#[derive(Clone, Copy, Debug)]
enum Effect {
    Block,
    Degrade {
        loss_ppm: u32,
        extra: SimTime,
        rto: SimTime,
    },
    Oneway(SimTime),
}

/// Builder for a run's timed link-fault events. Install with
/// [`Simulation::set_fault_schedule`](crate::Simulation::set_fault_schedule)
/// before the run starts.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<RawEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Whether any event was added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Partitions regions `a` and `b` (both directions) during
    /// `[from, to)`: traffic between them is buffered and delivered after
    /// `to` (the heal).
    ///
    /// # Panics
    /// Panics if the window is empty or inverted.
    pub fn partition(&mut self, a: usize, b: usize, from: SimTime, to: SimTime) -> &mut Self {
        assert!(from < to, "partition window [{from}, {to}) is empty");
        for (f, t) in [(a, b), (b, a)] {
            self.events.push(RawEvent {
                from: f,
                to: t,
                window: (from, to),
                effect: Effect::Block,
            });
        }
        self
    }

    /// Gray-degrades the directed link `from_region -> to_region` during
    /// `[from, to)`: each message pays `extra` additional one-way latency
    /// and, with probability `loss` (clamped to `[0, 1]`), one or more
    /// RTO-length retransmission delays.
    ///
    /// # Panics
    /// Panics if the window is empty or inverted.
    // One parameter per physical quantity; bundling them into a struct
    // would just move the argument list one call deeper.
    #[allow(clippy::too_many_arguments)]
    pub fn degrade(
        &mut self,
        from_region: usize,
        to_region: usize,
        from: SimTime,
        to: SimTime,
        loss: f64,
        extra: SimTime,
        rto: SimTime,
    ) -> &mut Self {
        assert!(from < to, "degrade window [{from}, {to}) is empty");
        let loss_ppm = (loss.clamp(0.0, 1.0) * 1e6).round() as u32;
        self.events.push(RawEvent {
            from: from_region,
            to: to_region,
            window: (from, to),
            effect: Effect::Degrade {
                loss_ppm,
                extra,
                rto,
            },
        });
        self
    }

    /// Overrides the base one-way latency of the directed link
    /// `from_region -> to_region` during `[from, to)` (asymmetric WANs).
    ///
    /// # Panics
    /// Panics if the window is empty or inverted.
    pub fn override_oneway(
        &mut self,
        from_region: usize,
        to_region: usize,
        from: SimTime,
        to: SimTime,
        oneway: SimTime,
    ) -> &mut Self {
        assert!(from < to, "override window [{from}, {to}) is empty");
        self.events.push(RawEvent {
            from: from_region,
            to: to_region,
            window: (from, to),
            effect: Effect::Oneway(oneway),
        });
        self
    }

    /// Compiles the schedule into per-pair piecewise-constant timelines.
    ///
    /// # Panics
    /// Panics if an event names a region outside `0..nregions`.
    pub(crate) fn compile(&self, nregions: usize) -> CompiledFaults {
        let mut timelines: Vec<Option<Vec<(SimTime, LinkState)>>> = vec![None; nregions * nregions];
        // Group event indices per directed pair.
        let mut per_pair: Vec<Vec<usize>> = vec![Vec::new(); nregions * nregions];
        for (i, e) in self.events.iter().enumerate() {
            assert!(
                e.from < nregions && e.to < nregions,
                "fault schedule names region pair ({}, {}) outside the {nregions}-region topology",
                e.from,
                e.to
            );
            per_pair[e.from * nregions + e.to].push(i);
        }
        for (pair, idxs) in per_pair.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            // Segment boundaries: 0 plus every window edge.
            let mut bounds: Vec<SimTime> = vec![0];
            for &i in &idxs {
                bounds.push(self.events[i].window.0);
                bounds.push(self.events[i].window.1);
            }
            bounds.sort_unstable();
            bounds.dedup();
            let timeline = bounds
                .into_iter()
                .map(|t| {
                    let mut st = LinkState::default();
                    let mut override_start = 0;
                    for &i in &idxs {
                        let e = &self.events[i];
                        if t < e.window.0 || t >= e.window.1 {
                            continue;
                        }
                        match e.effect {
                            Effect::Block => {
                                st.blocked_until =
                                    Some(st.blocked_until.unwrap_or(0).max(e.window.1));
                            }
                            Effect::Degrade {
                                loss_ppm,
                                extra,
                                rto,
                            } => {
                                st.loss_ppm = st.loss_ppm.max(loss_ppm);
                                st.extra += extra;
                                st.rto = st.rto.max(rto);
                            }
                            Effect::Oneway(ow) => {
                                if st.oneway.is_none() || e.window.0 >= override_start {
                                    override_start = e.window.0;
                                    st.oneway = Some(ow);
                                }
                            }
                        }
                    }
                    (t, st)
                })
                .collect();
            timelines[pair] = Some(timeline);
        }
        CompiledFaults {
            nregions,
            timelines,
        }
    }
}

/// The link effects in force on one directed pair at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct LinkState {
    /// `Some(heal)` while a partition covers the instant: delivery is
    /// deferred to `heal`.
    pub blocked_until: Option<SimTime>,
    /// Per-message loss probability in parts per million.
    pub loss_ppm: u32,
    /// Constant extra one-way latency.
    pub extra: SimTime,
    /// Retransmission timeout paid per simulated loss.
    pub rto: SimTime,
    /// Base one-way latency override (else the topology's).
    pub oneway: Option<SimTime>,
}

impl LinkState {
    /// Whether this state changes routing at all.
    pub fn is_clear(&self) -> bool {
        *self == LinkState::default()
    }
}

/// Compiled, binary-searchable form of a [`FaultSchedule`].
#[derive(Clone, Debug)]
pub(crate) struct CompiledFaults {
    nregions: usize,
    /// Per directed pair (`from * nregions + to`): `(start, state)`
    /// breakpoints sorted by start; the state holds until the next
    /// breakpoint. `None` = no events ever touch the pair.
    timelines: Vec<Option<Vec<(SimTime, LinkState)>>>,
}

impl CompiledFaults {
    /// The link state of `from_region -> to_region` at time `t`.
    pub fn state_at(&self, from_region: usize, to_region: usize, t: SimTime) -> LinkState {
        match &self.timelines[from_region * self.nregions + to_region] {
            None => LinkState::default(),
            Some(tl) => {
                let i = tl.partition_point(|(start, _)| *start <= t);
                // `tl[0].0 == 0`, so `i >= 1` always.
                tl[i - 1].1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    #[test]
    fn partition_blocks_both_directions_until_heal() {
        let mut fs = FaultSchedule::new();
        fs.partition(0, 1, units::secs(5), units::secs(9));
        let c = fs.compile(3);
        for (a, b) in [(0, 1), (1, 0)] {
            assert!(c.state_at(a, b, units::secs(4)).is_clear());
            assert_eq!(
                c.state_at(a, b, units::secs(5)).blocked_until,
                Some(units::secs(9))
            );
            assert_eq!(
                c.state_at(a, b, units::secs(8)).blocked_until,
                Some(units::secs(9))
            );
            assert!(c.state_at(a, b, units::secs(9)).is_clear());
        }
        // Unrelated pairs are untouched.
        assert!(c.state_at(0, 2, units::secs(6)).is_clear());
        assert!(c.state_at(2, 1, units::secs(6)).is_clear());
    }

    #[test]
    fn degrade_is_directed_and_windowed() {
        let mut fs = FaultSchedule::new();
        fs.degrade(
            1,
            0,
            units::secs(2),
            units::secs(4),
            0.25,
            units::ms(10),
            units::ms(100),
        );
        let c = fs.compile(2);
        let st = c.state_at(1, 0, units::secs(3));
        assert_eq!(st.loss_ppm, 250_000);
        assert_eq!(st.extra, units::ms(10));
        assert_eq!(st.rto, units::ms(100));
        assert!(st.blocked_until.is_none());
        // Reverse direction unaffected.
        assert!(c.state_at(0, 1, units::secs(3)).is_clear());
        assert!(c.state_at(1, 0, units::secs(4)).is_clear());
    }

    #[test]
    fn overlapping_effects_combine() {
        let mut fs = FaultSchedule::new();
        fs.degrade(0, 1, 10, 100, 0.1, 5, 50)
            .degrade(0, 1, 20, 80, 0.3, 7, 20)
            .partition(0, 1, 30, 40)
            .override_oneway(0, 1, 0, 100, 999);
        let c = fs.compile(2);
        let st = c.state_at(0, 1, 35);
        assert_eq!(st.blocked_until, Some(40));
        assert_eq!(st.loss_ppm, 300_000);
        assert_eq!(st.extra, 12, "extras sum");
        assert_eq!(st.rto, 50, "largest RTO wins");
        assert_eq!(st.oneway, Some(999));
        let st = c.state_at(0, 1, 90);
        assert!(st.blocked_until.is_none());
        assert_eq!(st.loss_ppm, 100_000, "only the first degrade remains");
        assert_eq!(st.extra, 5);
        assert_eq!(st.oneway, Some(999));
        assert!(c.state_at(0, 1, 100).is_clear());
    }

    #[test]
    fn latest_starting_override_wins() {
        let mut fs = FaultSchedule::new();
        fs.override_oneway(0, 1, 0, 100, 10)
            .override_oneway(0, 1, 50, 100, 20);
        let c = fs.compile(2);
        assert_eq!(c.state_at(0, 1, 25).oneway, Some(10));
        assert_eq!(c.state_at(0, 1, 75).oneway, Some(20));
    }

    #[test]
    fn chained_partitions_expose_each_heal() {
        // Two back-to-back windows: during the first, blocked_until is the
        // first heal; a lookup at that heal sees the second window.
        let mut fs = FaultSchedule::new();
        fs.partition(0, 1, 10, 20).partition(0, 1, 20, 30);
        let c = fs.compile(2);
        assert_eq!(c.state_at(0, 1, 15).blocked_until, Some(20));
        assert_eq!(c.state_at(0, 1, 20).blocked_until, Some(30));
        assert!(c.state_at(0, 1, 30).is_clear());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_region_fails_loudly() {
        let mut fs = FaultSchedule::new();
        fs.partition(0, 5, 1, 2);
        fs.compile(3);
    }
}
