//! Fan-in propagation tree (§5, "Communication Patterns").
//!
//! With many partitions, the all-to-one flow of metadata into Eunomia may
//! not scale; the paper's first remedy is to "build a propagation tree
//! among partition servers" so the service receives a few merged bundles
//! instead of one message per partition per interval. This module
//! provides the tree shape: a complete `arity`-ary tree over partition
//! indices in heap layout (node 0 is the root and the only node that
//! talks to Eunomia directly).

/// A complete k-ary fan-in tree over `n` nodes in heap layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FanInTree {
    n: usize,
    arity: usize,
}

impl FanInTree {
    /// Builds a tree over `n` nodes with the given fan-in `arity`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `arity < 2`.
    pub fn new(n: usize, arity: usize) -> Self {
        assert!(n > 0, "tree needs at least one node");
        assert!(arity >= 2, "fan-in below 2 is a chain, not a tree");
        FanInTree { n, arity }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree is empty (never true — `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The configured fan-in.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The root node (the one that forwards to Eunomia).
    pub fn root(&self) -> usize {
        0
    }

    /// Parent of `node`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn parent(&self, node: usize) -> Option<usize> {
        assert!(node < self.n, "node out of range");
        (node != 0).then(|| (node - 1) / self.arity)
    }

    /// Children of `node`, in index order.
    pub fn children(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        let first = node * self.arity + 1;
        (first..first + self.arity).filter(move |c| *c < self.n)
    }

    /// Distance from `node` to the root.
    pub fn depth(&self, node: usize) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// Height of the whole tree (max depth).
    pub fn height(&self) -> usize {
        self.depth(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_tree_shape() {
        let t = FanInTree::new(7, 2);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.children(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(t.children(1).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(t.children(2).collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(t.parent(5), Some(2));
        assert_eq!(t.depth(6), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn partial_last_level() {
        let t = FanInTree::new(5, 3);
        assert_eq!(t.children(0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(t.children(1).collect::<Vec<_>>(), vec![4]);
        assert_eq!(t.children(2).count(), 0);
    }

    #[test]
    fn single_node_tree() {
        let t = FanInTree::new(1, 4);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.children(0).count(), 0);
        assert_eq!(t.height(), 0);
    }

    #[test]
    #[should_panic(expected = "fan-in below 2")]
    fn arity_one_panics() {
        let _ = FanInTree::new(3, 1);
    }

    proptest! {
        /// Every node's parent lists it as a child, and walking parents
        /// always reaches the root in <= log_arity(n) + 1 steps.
        #[test]
        fn parent_child_consistency(n in 1usize..200, arity in 2usize..8) {
            let t = FanInTree::new(n, arity);
            for node in 0..n {
                if let Some(p) = t.parent(node) {
                    prop_assert!(t.children(p).any(|c| c == node));
                    prop_assert!(p < node, "parents precede children in heap layout");
                }
                prop_assert!(t.depth(node) <= n.ilog(arity.min(n).max(2)) as usize + 1);
            }
            // Children partition the non-root nodes.
            let mut seen = vec![false; n];
            seen[0] = true;
            for node in 0..n {
                for c in t.children(node) {
                    prop_assert!(!seen[c], "each node has one parent");
                    seen[c] = true;
                }
            }
            prop_assert!(seen.iter().all(|s| *s));
        }
    }
}
