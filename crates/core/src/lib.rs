#![deny(missing_docs)]

//! Eunomia core: unobtrusive deferred update stabilization.
//!
//! This crate implements the paper's primary contribution as *sans-IO*
//! state machines — pure data structures whose inputs are messages and
//! clock readings and whose outputs are returned values. Two drivers exist
//! in the workspace: the deterministic discrete-event simulator
//! (`eunomia-sim` + `eunomia-geo`) and the real-thread runtime
//! (`eunomia-runtime`). Both run exactly the code in this crate.
//!
//! Module map (paper section in parentheses):
//!
//! * [`time`] — scalar hybrid clocks (Alg. 2 line 5), structured HLC
//!   (Kulkarni et al.), vector times with one entry per datacenter (§4).
//! * [`buffer`] — the stabilization buffer: a totally ordered set of
//!   unstable operations keyed by `(timestamp, partition)` (§6).
//! * [`eunomia`] — the Eunomia service state machine: `ADD_OP`,
//!   `HEARTBEAT`, `PROCESS_STABLE` (Alg. 3, §3.1).
//! * [`replica`] — fault-tolerant Eunomia: replica state (Alg. 4), the
//!   partition-side replicated sender enforcing the prefix property, and
//!   leader-driven stable broadcast (§3.3).
//! * [`shard`] — the sharded, flat-buffer variant of the replica used by
//!   the threaded runtime's hot path: per-feeder lanes with watermark
//!   dedup, a tournament tree over stable cutoffs, and id batches in
//!   [`shard::BatchFrame`]s (one allocation per batch).
//! * [`election`] — an Ω-style eventual leader elector (§3.3 allows any
//!   asynchronous leader election; we provide a timeout-based one).
//! * [`sequencer`] — the traditional sequencer and its chain-replicated
//!   fault-tolerant variant, used as baselines (§7.1).
//! * [`batch`] — partition-side operation batching (§5).
//! * [`tree`] — the fan-in propagation tree among partition servers (§5).
//!
//! # Examples
//!
//! Deferred stabilization of updates from two partitions:
//!
//! ```
//! use eunomia_core::eunomia::EunomiaState;
//! use eunomia_core::ids::PartitionId;
//! use eunomia_core::time::Timestamp;
//!
//! let mut service: EunomiaState<&str> = EunomiaState::new(2);
//! service.add_op(PartitionId(0), Timestamp(10), "a").unwrap();
//! service.add_op(PartitionId(1), Timestamp(12), "b").unwrap();
//! // Nothing is stable yet: partition 0 might still send ts 11.
//! let mut stable = Vec::new();
//! service.process_stable(&mut stable);
//! assert_eq!(stable.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec!["a"]);
//!
//! // A heartbeat from partition 0 pushes the stable time forward.
//! service.heartbeat(PartitionId(0), Timestamp(20));
//! service.process_stable(&mut stable);
//! assert_eq!(stable.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec!["a", "b"]);
//! ```

pub mod batch;
pub mod buffer;
pub mod election;
pub mod eunomia;
pub mod ids;
pub mod replica;
pub mod sequencer;
pub mod shard;
pub mod time;
pub mod tree;

pub use buffer::{OpKey, StabilizationBuffer};
pub use eunomia::EunomiaState;
pub use ids::{DcId, PartitionId, ReplicaId};
pub use replica::{ReplicaState, ReplicatedSender};
pub use shard::{BatchFrame, LaneSender, ShardedReplicaState};
pub use time::{ScalarHlc, Timestamp, VectorTime};
