//! Ω-style eventual leader election (§3.3).
//!
//! The paper notes that a unique leader is *not* required for correctness —
//! it only saves network resources — so "any leader election protocol
//! designed for asynchronous systems (such as Ω) can be plugged in". This
//! module provides a simple timeout-based Ω: members exchange heartbeats,
//! each member suspects peers whose heartbeat is older than a timeout, and
//! the trusted member with the smallest id is the leader. With eventually
//! timely heartbeats all members eventually agree.

use crate::ids::ReplicaId;
use crate::time::Timestamp;

/// Timeout-based eventual leader detector.
///
/// Drivers feed it heartbeat arrivals (`record_heartbeat`) and query
/// `leader(now)`. The local member never suspects itself.
#[derive(Clone, Debug)]
pub struct OmegaState {
    me: ReplicaId,
    last_heard: Vec<Timestamp>,
    timeout: u64,
}

impl OmegaState {
    /// Creates a detector for `n_members` members, local member `me`,
    /// suspecting peers silent for more than `timeout` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range or `timeout` is zero.
    pub fn new(me: ReplicaId, n_members: usize, timeout: u64) -> Self {
        assert!(me.index() < n_members, "local member must be in range");
        assert!(timeout > 0, "timeout must be positive");
        OmegaState {
            me,
            last_heard: vec![Timestamp::ZERO; n_members],
            timeout,
        }
    }

    /// Records a heartbeat from `member` arriving at local time `now`.
    pub fn record_heartbeat(&mut self, member: ReplicaId, now: Timestamp) {
        if let Some(slot) = self.last_heard.get_mut(member.index()) {
            if now > *slot {
                *slot = now;
            }
        }
    }

    /// Whether `member` is currently trusted at local time `now`.
    pub fn trusts(&self, member: ReplicaId, now: Timestamp) -> bool {
        if member == self.me {
            return true;
        }
        match self.last_heard.get(member.index()) {
            Some(last) => now.saturating_sub(*last) <= self.timeout,
            None => false,
        }
    }

    /// Current leader estimate: the trusted member with the smallest id.
    ///
    /// Always returns some member — in the worst case the local one.
    pub fn leader(&self, now: Timestamp) -> ReplicaId {
        for i in 0..self.last_heard.len() {
            let candidate = ReplicaId(i as u32);
            if self.trusts(candidate, now) {
                return candidate;
            }
        }
        self.me
    }

    /// The configured suspicion timeout in ticks.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// The local member id.
    pub fn me(&self) -> ReplicaId {
        self.me
    }

    /// Folds the detector state into `h` for model-checking state
    /// hashing. `last_heard` holds heartbeat arrival *clock readings* —
    /// under the perfect-zero clocks MC configs use these are always
    /// zero, so including them is exact there and merely conservative
    /// (over-splitting, never over-merging) elsewhere.
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u32(self.me.0);
        for ts in &self.last_heard {
            h.write_u64(ts.0);
        }
        h.write_u64(self.timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initially_trusts_only_self_until_heartbeats() {
        let o = OmegaState::new(ReplicaId(2), 3, 100);
        // No heartbeats at time beyond the timeout: peers suspected.
        let now = Timestamp(1000);
        assert!(!o.trusts(ReplicaId(0), now));
        assert!(!o.trusts(ReplicaId(1), now));
        assert!(o.trusts(ReplicaId(2), now));
        assert_eq!(o.leader(now), ReplicaId(2));
    }

    #[test]
    fn lowest_trusted_id_wins() {
        let mut o = OmegaState::new(ReplicaId(2), 3, 100);
        o.record_heartbeat(ReplicaId(0), Timestamp(950));
        o.record_heartbeat(ReplicaId(1), Timestamp(990));
        assert_eq!(o.leader(Timestamp(1000)), ReplicaId(0));
        // Replica 0 goes silent past the timeout.
        assert_eq!(o.leader(Timestamp(1051)), ReplicaId(1));
        // Both silent.
        assert_eq!(o.leader(Timestamp(2000)), ReplicaId(2));
    }

    #[test]
    fn recovery_restores_leadership() {
        let mut o = OmegaState::new(ReplicaId(1), 2, 50);
        o.record_heartbeat(ReplicaId(0), Timestamp(100));
        assert_eq!(o.leader(Timestamp(120)), ReplicaId(0));
        assert_eq!(o.leader(Timestamp(200)), ReplicaId(1));
        o.record_heartbeat(ReplicaId(0), Timestamp(210));
        assert_eq!(o.leader(Timestamp(220)), ReplicaId(0));
    }

    #[test]
    fn stale_heartbeats_do_not_rewind() {
        let mut o = OmegaState::new(ReplicaId(1), 2, 50);
        o.record_heartbeat(ReplicaId(0), Timestamp(100));
        o.record_heartbeat(ReplicaId(0), Timestamp(80));
        assert!(o.trusts(ReplicaId(0), Timestamp(150)));
        assert!(!o.trusts(ReplicaId(0), Timestamp(151)));
    }

    #[test]
    #[should_panic(expected = "local member must be in range")]
    fn out_of_range_member_panics() {
        let _ = OmegaState::new(ReplicaId(3), 3, 100);
    }

    #[test]
    fn two_detectors_converge_on_same_leader() {
        let mut a = OmegaState::new(ReplicaId(1), 3, 100);
        let mut b = OmegaState::new(ReplicaId(2), 3, 100);
        // Replica 0 is alive and heartbeats reach both.
        for t in (0..1000).step_by(50) {
            a.record_heartbeat(ReplicaId(0), Timestamp(t));
            b.record_heartbeat(ReplicaId(0), Timestamp(t));
            a.record_heartbeat(ReplicaId(2), Timestamp(t));
            b.record_heartbeat(ReplicaId(1), Timestamp(t));
        }
        assert_eq!(a.leader(Timestamp(1000)), b.leader(Timestamp(1000)));
        assert_eq!(a.leader(Timestamp(1000)), ReplicaId(0));
    }
}
