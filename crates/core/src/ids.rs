//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifies one logical partition within a datacenter (0-based).
///
/// The paper divides the key space into `N` partitions distributed across
/// datacenter machines; updates to a partition are serialized by its native
/// update protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Index for use with `Vec`s holding per-partition state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies one datacenter (geo-location), 0-based out of `M`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DcId(pub u16);

impl DcId {
    /// Index for use with `Vec`s holding per-datacenter state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// Identifies one replica of the fault-tolerant Eunomia service (or of the
/// chain-replicated sequencer baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Index for use with `Vec`s holding per-replica state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_display() {
        assert!(PartitionId(1) < PartitionId(2));
        assert_eq!(PartitionId(3).to_string(), "p3");
        assert_eq!(DcId(0).to_string(), "dc0");
        assert_eq!(ReplicaId(7).to_string(), "r7");
        assert_eq!(DcId(2).index(), 2);
        assert_eq!(ReplicaId(5).index(), 5);
    }
}
