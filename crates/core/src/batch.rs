//! Partition-side operation batching (§5, "Communication Patterns").
//!
//! Partitions accumulate operations and propagate them to Eunomia only
//! periodically; this cuts the message rate at the service at the cost of
//! a slight increase in stabilization time. Crucially — unlike batching at
//! a sequencer — this waiting is *not* in the client's critical path: the
//! client already got its reply when the operation entered the batch.

use crate::time::Timestamp;

/// A time-based batcher.
///
/// Drivers push items as operations are timestamped and call
/// [`Batcher::flush_due`] from their periodic tick; the batch is emitted
/// once `interval` ticks elapsed since the last flush (or
/// immediately when `interval` is zero).
#[derive(Clone, Debug)]
pub struct Batcher<T> {
    buf: Vec<T>,
    interval: u64,
    last_flush: Timestamp,
    flushes: u64,
    items: u64,
}

impl<T> Batcher<T> {
    /// Creates a batcher flushing every `interval` ticks.
    pub fn new(interval: u64) -> Self {
        Batcher {
            buf: Vec::new(),
            interval,
            last_flush: Timestamp::ZERO,
            flushes: 0,
            items: 0,
        }
    }

    /// Adds an item to the open batch.
    pub fn push(&mut self, item: T) {
        self.buf.push(item);
        self.items += 1;
    }

    /// Number of items in the open batch.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the open batch is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether a flush is due at `now`.
    pub fn due(&self, now: Timestamp) -> bool {
        !self.buf.is_empty() && now.saturating_sub(self.last_flush) >= self.interval
    }

    /// Emits the batch if due, otherwise `None`.
    pub fn flush_due(&mut self, now: Timestamp) -> Option<Vec<T>> {
        if self.due(now) {
            Some(self.force_flush(now))
        } else {
            None
        }
    }

    /// Unconditionally emits the (possibly empty) open batch.
    pub fn force_flush(&mut self, now: Timestamp) -> Vec<T> {
        self.last_flush = now;
        self.flushes += 1;
        std::mem::take(&mut self.buf)
    }

    /// Configured flush interval (ticks).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Total batches emitted.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Mean items per emitted batch, or `None` before the first flush.
    pub fn mean_batch_size(&self) -> Option<f64> {
        (self.flushes > 0)
            .then(|| (self.items - self.buf.len() as u64) as f64 / self.flushes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_interval() {
        let mut b: Batcher<u32> = Batcher::new(1000);
        b.push(1);
        assert!(!b.due(Timestamp(500)));
        assert_eq!(b.flush_due(Timestamp(500)), None);
        assert!(b.due(Timestamp(1000)));
        assert_eq!(b.flush_due(Timestamp(1000)), Some(vec![1]));
        b.push(2);
        // The window restarts from the last flush.
        assert!(!b.due(Timestamp(1999)));
        assert!(b.due(Timestamp(2000)));
    }

    #[test]
    fn zero_interval_flushes_whenever_nonempty() {
        let mut b: Batcher<u32> = Batcher::new(0);
        assert_eq!(b.flush_due(Timestamp(0)), None, "empty batch never flushes");
        b.push(7);
        assert_eq!(b.flush_due(Timestamp(0)), Some(vec![7]));
    }

    #[test]
    fn batches_accumulate_between_flushes() {
        let mut b: Batcher<u32> = Batcher::new(10);
        b.push(1);
        b.push(2);
        b.push(3);
        assert_eq!(b.flush_due(Timestamp(10)), Some(vec![1, 2, 3]));
        assert!(b.is_empty());
    }

    #[test]
    fn mean_batch_size_tracks() {
        let mut b: Batcher<u32> = Batcher::new(0);
        assert_eq!(b.mean_batch_size(), None);
        b.push(1);
        b.push(2);
        b.force_flush(Timestamp(1));
        b.push(3);
        b.force_flush(Timestamp(2));
        assert_eq!(b.mean_batch_size(), Some(1.5));
        assert_eq!(b.flushes(), 2);
    }
}
