//! Timestamps, hybrid clocks and vector times.
//!
//! The paper combines logical and physical time (§3.2): update timestamps
//! are scalars derived from a loosely synchronized physical clock, with a
//! logical bump that keeps them strictly monotone per partition and strictly
//! above each client's causal past. [`ScalarHlc`] implements exactly the
//! rule of Algorithm 2 line 5. [`Hlc`] is the structured
//! (physical, logical) hybrid clock of Kulkarni et al., provided as the
//! general-purpose clock for library users. [`VectorTime`] is the
//! one-entry-per-datacenter vector of §4.

use std::fmt;
use std::ops::{Add, Sub};

/// A scalar timestamp in clock ticks (nanoseconds throughout this
/// workspace).
///
/// `Timestamp(0)` is the bottom element (before every event). Timestamps
/// produced by a single partition are strictly increasing (Property 2 of
/// the paper); timestamps across partitions order causally related updates
/// (Property 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The bottom timestamp, ordered before every update.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The top timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Raw tick value.
    pub fn as_ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    pub fn saturating_add(self, delta: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta))
    }

    /// Saturating difference in ticks.
    pub fn saturating_sub(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Maximum of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.max(other.0))
    }

    /// Minimum of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.min(other.0))
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;

    fn sub(self, rhs: Timestamp) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The scalar hybrid clock of Algorithm 2.
///
/// Each partition owns one. Ticking with the current physical clock reading
/// and the client's dependency clock yields the update timestamp
/// `MaxTs <- max(phys, dep + 1, MaxTs + 1)`, which is:
///
/// * strictly greater than the dependency (Property 1),
/// * strictly greater than any timestamp this clock issued before
///   (Property 2),
/// * and no further ahead of real time than the causal past forces it to
///   be — the logical bump replaces the "wait out the clock skew" delays of
///   purely physical schemes (§3.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarHlc {
    max_ts: Timestamp,
}

impl ScalarHlc {
    /// A fresh clock that has issued no timestamps.
    pub fn new() -> Self {
        ScalarHlc {
            max_ts: Timestamp::ZERO,
        }
    }

    /// Issues the timestamp for an update, given the physical clock reading
    /// `physical` and the client's causal dependency `dep`.
    pub fn tick(&mut self, physical: Timestamp, dep: Timestamp) -> Timestamp {
        let ts = Timestamp(physical.0.max(dep.0 + 1).max(self.max_ts.0 + 1));
        self.max_ts = ts;
        ts
    }

    /// Issues a timestamp for a local event with no external dependency.
    pub fn tick_local(&mut self, physical: Timestamp) -> Timestamp {
        self.tick(physical, Timestamp::ZERO)
    }

    /// The latest timestamp issued (`MaxTs` in the paper).
    pub fn last(&self) -> Timestamp {
        self.max_ts
    }

    /// Whether the heartbeat condition of Algorithm 2 line 11 holds: the
    /// physical clock has advanced at least `delta` past the last issued
    /// timestamp, so a heartbeat stamped `physical` cannot be overtaken.
    pub fn heartbeat_due(&self, physical: Timestamp, delta: u64) -> bool {
        physical.0 >= self.max_ts.0.saturating_add(delta)
    }

    /// Issues a heartbeat timestamp (the physical reading) and records it so
    /// that subsequent updates are stamped strictly above it, keeping the
    /// per-partition stream monotone even if the physical clock stalls
    /// within one microsecond.
    pub fn heartbeat(&mut self, physical: Timestamp) -> Timestamp {
        debug_assert!(
            physical > self.max_ts,
            "heartbeat_due must be checked first"
        );
        self.max_ts = physical;
        physical
    }
}

/// A structured hybrid logical clock (Kulkarni et al., OPODIS '14).
///
/// Keeps the physical component `l` within the clock-synchronization bound
/// of real time, and a bounded logical counter `c` that breaks ties. The
/// paper's scalar scheme is the special case where both components are
/// folded into one integer; this type exists for library users who want
/// explicit HLC semantics and for the clock-skew ablation bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HlcTimestamp {
    /// Physical component (clock ticks).
    pub l: u64,
    /// Logical tie-breaker.
    pub c: u32,
}

impl fmt::Display for HlcTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.l, self.c)
    }
}

/// Hybrid logical clock state.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hlc {
    last: HlcTimestamp,
}

impl Hlc {
    /// A fresh clock.
    pub fn new() -> Self {
        Hlc {
            last: HlcTimestamp::default(),
        }
    }

    /// Timestamp for a send or local event at physical time `pt` (ticks).
    pub fn now(&mut self, pt: u64) -> HlcTimestamp {
        if pt > self.last.l {
            self.last = HlcTimestamp { l: pt, c: 0 };
        } else {
            self.last.c += 1;
        }
        self.last
    }

    /// Timestamp for a receive event: merges the remote timestamp `m` with
    /// physical time `pt`.
    pub fn update(&mut self, pt: u64, m: HlcTimestamp) -> HlcTimestamp {
        let l_new = pt.max(self.last.l).max(m.l);
        let c_new = if l_new == self.last.l && l_new == m.l {
            self.last.c.max(m.c) + 1
        } else if l_new == self.last.l {
            self.last.c + 1
        } else if l_new == m.l {
            m.c + 1
        } else {
            0
        };
        self.last = HlcTimestamp { l: l_new, c: c_new };
        self.last
    }

    /// The latest issued timestamp.
    pub fn last(&self) -> HlcTimestamp {
        self.last
    }
}

/// Datacenter counts up to this stay inline in a [`VectorTime`] (no heap
/// allocation); larger deployments spill to a pooled buffer. Vector
/// times ride on every client-path message, so a clone must never be a
/// malloc/free pair: the paper's 3-DC deployment and the 8-DC `massive`
/// scenario both fit inline (8 entries keep the message enums within a
/// few cache lines), and wider deployments (the 16+-DC `huge` presets)
/// draw their entry buffers from a per-thread free-list pool instead of
/// the allocator.
const INLINE_DCS: usize = 8;

/// Per-length cap on pooled spill buffers; beyond it, dropped buffers
/// free normally (the pool is a backstop, not an unbounded cache).
const POOL_CAP: usize = 4096;

thread_local! {
    /// Free lists of spilled entry buffers, indexed by length. One
    /// simulation run uses a single datacenter count, so in the steady
    /// state every clone/drop is a pop/push on one list — the "payload
    /// arena" that replaces per-message allocator churn at 16+ DCs.
    static VT_POOL: std::cell::RefCell<Vec<Vec<Box<[Timestamp]>>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A fixed-length entry buffer that returns itself to [`VT_POOL`] on
/// drop and clones by drawing from it.
struct PooledEntries(std::mem::ManuallyDrop<Box<[Timestamp]>>);

impl PooledEntries {
    /// A buffer of `len` zero timestamps, reusing a pooled one if
    /// available.
    fn zeroed(len: usize) -> Self {
        let recycled = VT_POOL
            .try_with(|pool| {
                let mut pool = pool.borrow_mut();
                pool.get_mut(len).and_then(|list| list.pop())
            })
            .ok()
            .flatten();
        match recycled {
            Some(mut buf) => {
                buf.fill(Timestamp::ZERO);
                PooledEntries(std::mem::ManuallyDrop::new(buf))
            }
            None => PooledEntries(std::mem::ManuallyDrop::new(
                vec![Timestamp::ZERO; len].into_boxed_slice(),
            )),
        }
    }

    fn copy_of(src: &[Timestamp]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.0.copy_from_slice(src);
        buf
    }
}

impl Drop for PooledEntries {
    fn drop(&mut self) {
        // SAFETY: `self.0` is never used again; either the pool owns the
        // box now or it drops right here.
        let buf = unsafe { std::mem::ManuallyDrop::take(&mut self.0) };
        let len = buf.len();
        // `try_with` so drops during thread teardown (TLS already gone)
        // fall back to a plain free.
        let _ = VT_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() <= len {
                pool.resize_with(len + 1, Vec::new);
            }
            if pool[len].len() < POOL_CAP {
                pool[len].push(buf);
            }
        });
    }
}

impl Clone for PooledEntries {
    fn clone(&self) -> Self {
        PooledEntries::copy_of(&self.0)
    }
}

impl fmt::Debug for PooledEntries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[derive(Clone, Debug)]
enum VtRepr {
    Inline {
        len: u8,
        entries: [Timestamp; INLINE_DCS],
    },
    Heap(PooledEntries),
}

/// A vector time with one [`Timestamp`] entry per datacenter (§4).
///
/// Entry `m` carries the causal dependency on datacenter `m`'s update
/// stream. Vector times avoid the false cross-datacenter dependencies a
/// single scalar would introduce, which is what lets EunomiaKV reach the
/// optimal remote-visibility lower bound (latency from the *originating*
/// datacenter rather than the farthest one).
///
/// Stored inline (copy, no allocation) for up to `INLINE_DCS` (4)
/// datacenters; equality and hashing are over the logical entries, so
/// representation never leaks.
#[derive(Clone, Debug)]
pub struct VectorTime(VtRepr);

impl Default for VectorTime {
    fn default() -> Self {
        VectorTime(VtRepr::Inline {
            len: 0,
            entries: [Timestamp::ZERO; INLINE_DCS],
        })
    }
}

impl PartialEq for VectorTime {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for VectorTime {}

impl std::hash::Hash for VectorTime {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl VectorTime {
    /// The zero vector over `m` datacenters.
    pub fn new(m: usize) -> Self {
        if m <= INLINE_DCS {
            VectorTime(VtRepr::Inline {
                len: m as u8,
                entries: [Timestamp::ZERO; INLINE_DCS],
            })
        } else {
            VectorTime(VtRepr::Heap(PooledEntries::zeroed(m)))
        }
    }

    /// Builds from raw tick entries.
    pub fn from_ticks(entries: &[u64]) -> Self {
        let mut vt = VectorTime::new(entries.len());
        for (slot, &e) in vt.as_mut_slice().iter_mut().zip(entries.iter()) {
            *slot = Timestamp(e);
        }
        vt
    }

    #[inline]
    fn as_slice(&self) -> &[Timestamp] {
        match &self.0 {
            VtRepr::Inline { len, entries } => &entries[..*len as usize],
            VtRepr::Heap(v) => &v.0,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [Timestamp] {
        match &mut self.0 {
            VtRepr::Inline { len, entries } => &mut entries[..*len as usize],
            VtRepr::Heap(v) => &mut v.0,
        }
    }

    /// Number of entries (datacenters).
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Entry for datacenter `dc`.
    pub fn get(&self, dc: crate::ids::DcId) -> Timestamp {
        self.as_slice()[dc.index()]
    }

    /// Sets the entry for datacenter `dc`.
    pub fn set(&mut self, dc: crate::ids::DcId, ts: Timestamp) {
        self.as_mut_slice()[dc.index()] = ts;
    }

    /// Pointwise maximum with `other` (client read rule of §4).
    pub fn merge_max(&mut self, other: &VectorTime) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether every entry of `self` is `>=` the matching entry of `other`
    /// (i.e. `other`'s dependencies are covered by `self`).
    pub fn dominates(&self, other: &VectorTime) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .all(|(a, b)| a >= b)
    }

    /// Whether `self` covers `other` on every entry except the ones in
    /// `skip` — the receiver's dependency check of Algorithm 5 line 12,
    /// which exempts the local datacenter and the update's origin.
    pub fn dominates_except(&self, other: &VectorTime, skip: &[crate::ids::DcId]) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .enumerate()
            .all(|(i, (a, b))| skip.iter().any(|dc| dc.index() == i) || a >= b)
    }

    /// Minimum entry (used by scalar global-stabilization baselines).
    pub fn min_entry(&self) -> Timestamp {
        self.as_slice()
            .iter()
            .copied()
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Iterates over entries.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.as_slice().iter().copied()
    }

    /// Raw tick entries.
    pub fn as_ticks(&self) -> Vec<u64> {
        self.as_slice().iter().map(|t| t.0).collect()
    }
}

impl fmt::Display for VectorTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", t.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DcId;
    use proptest::prelude::*;

    #[test]
    fn scalar_hlc_follows_alg2_rule() {
        let mut clock = ScalarHlc::new();
        // Physical ahead of everything: timestamp = physical.
        assert_eq!(clock.tick(Timestamp(100), Timestamp(50)), Timestamp(100));
        // Dependency ahead of physical: timestamp = dep + 1 (no waiting).
        assert_eq!(clock.tick(Timestamp(101), Timestamp(500)), Timestamp(501));
        // Physical behind MaxTs: timestamp = MaxTs + 1 (monotonicity).
        assert_eq!(clock.tick(Timestamp(102), Timestamp(0)), Timestamp(502));
    }

    #[test]
    fn scalar_hlc_is_strictly_monotone() {
        let mut clock = ScalarHlc::new();
        let mut prev = Timestamp::ZERO;
        for i in 0..1000u64 {
            // Physical clock that stalls (integer division) and jumps.
            let ts = clock.tick(Timestamp(i / 10), Timestamp(i % 7));
            assert!(ts > prev, "timestamps must strictly increase");
            prev = ts;
        }
    }

    #[test]
    fn heartbeat_due_and_monotone() {
        let mut clock = ScalarHlc::new();
        clock.tick(Timestamp(100), Timestamp::ZERO);
        assert!(!clock.heartbeat_due(Timestamp(104), 5));
        assert!(clock.heartbeat_due(Timestamp(105), 5));
        let hb = clock.heartbeat(Timestamp(105));
        assert_eq!(hb, Timestamp(105));
        // An update right after the heartbeat must exceed it even if the
        // physical clock has not advanced.
        let ts = clock.tick(Timestamp(105), Timestamp::ZERO);
        assert!(ts > hb);
    }

    #[test]
    fn structured_hlc_stays_close_to_physical() {
        let mut hlc = Hlc::new();
        let t1 = hlc.now(10);
        assert_eq!((t1.l, t1.c), (10, 0));
        let t2 = hlc.now(10);
        assert_eq!((t2.l, t2.c), (10, 1));
        let t3 = hlc.now(11);
        assert_eq!((t3.l, t3.c), (11, 0));
    }

    #[test]
    fn structured_hlc_update_merges() {
        let mut hlc = Hlc::new();
        hlc.now(10);
        // Remote is ahead: adopt its l, bump c.
        let t = hlc.update(10, HlcTimestamp { l: 20, c: 3 });
        assert_eq!((t.l, t.c), (20, 4));
        // Physical overtakes: logical resets.
        let t = hlc.update(25, HlcTimestamp { l: 20, c: 9 });
        assert_eq!((t.l, t.c), (25, 0));
        // Equal l on both sides: c = max + 1.
        let t = hlc.update(25, HlcTimestamp { l: 25, c: 7 });
        assert_eq!((t.l, t.c), (25, 8));
    }

    #[test]
    fn vector_time_merge_and_dominates() {
        let mut a = VectorTime::from_ticks(&[5, 0, 9]);
        let b = VectorTime::from_ticks(&[3, 7, 9]);
        assert!(!a.dominates(&b));
        a.merge_max(&b);
        assert_eq!(a, VectorTime::from_ticks(&[5, 7, 9]));
        assert!(a.dominates(&b));
        assert_eq!(a.min_entry(), Timestamp(5));
    }

    #[test]
    fn dominates_except_skips_entries() {
        let site = VectorTime::from_ticks(&[0, 100, 0]);
        let dep = VectorTime::from_ticks(&[999, 50, 888]);
        // Skipping dc0 (local) and dc2 (origin) leaves only dc1 to check.
        assert!(site.dominates_except(&dep, &[DcId(0), DcId(2)]));
        assert!(!site.dominates_except(&dep, &[DcId(0)]));
    }

    #[test]
    fn wide_vectors_spill_and_pool_roundtrip() {
        // 16 DCs exceeds the inline capacity: entries live in a pooled
        // buffer and must survive clone/merge/drop cycles unchanged.
        let mut a = VectorTime::new(16);
        a.set(DcId(15), Timestamp(7));
        a.set(DcId(0), Timestamp(3));
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.get(DcId(15)), Timestamp(7));
        drop(a);
        // A fresh wide vector reuses the dropped buffer and must come
        // back zeroed, not carrying the old entries.
        let c = VectorTime::new(16);
        assert_eq!(c.len(), 16);
        assert!(c.iter().all(|t| t == Timestamp::ZERO));
        let mut m = VectorTime::new(16);
        m.merge_max(&b);
        assert_eq!(m, b);
        assert!(m.dominates(&c));
    }

    #[test]
    fn vector_time_set_get_roundtrip() {
        let mut v = VectorTime::new(3);
        v.set(DcId(1), Timestamp(42));
        assert_eq!(v.get(DcId(1)), Timestamp(42));
        assert_eq!(v.get(DcId(0)), Timestamp::ZERO);
        assert_eq!(v.to_string(), "[0,42,0]");
    }

    proptest! {
        /// Property 1 analogue: a tick is strictly above its dependency.
        #[test]
        fn tick_exceeds_dependency(phys in 0u64..1_000_000, dep in 0u64..1_000_000) {
            let mut c = ScalarHlc::new();
            let ts = c.tick(Timestamp(phys), Timestamp(dep));
            prop_assert!(ts.0 > dep);
            prop_assert!(ts.0 >= phys);
        }

        /// The logical bump never pushes further ahead than needed: with no
        /// dependencies and an advancing physical clock, ts == physical.
        #[test]
        fn tick_tracks_physical(start in 1u64..1_000_000) {
            let mut c = ScalarHlc::new();
            for i in 0..100u64 {
                let phys = Timestamp(start + i * 10);
                let ts = c.tick_local(phys);
                prop_assert_eq!(ts, phys);
            }
        }

        /// merge_max is commutative, associative and idempotent (join).
        #[test]
        fn merge_max_is_a_join(
            a in proptest::collection::vec(0u64..1000, 4),
            b in proptest::collection::vec(0u64..1000, 4),
        ) {
            let va = VectorTime::from_ticks(&a);
            let vb = VectorTime::from_ticks(&b);
            let mut ab = va.clone();
            ab.merge_max(&vb);
            let mut ba = vb.clone();
            ba.merge_max(&va);
            prop_assert_eq!(&ab, &ba);
            prop_assert!(ab.dominates(&va) && ab.dominates(&vb));
            let mut idem = ab.clone();
            idem.merge_max(&ab.clone());
            prop_assert_eq!(idem, ab);
        }

        /// Structured HLC timestamps strictly increase per clock.
        #[test]
        fn hlc_monotone(readings in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut hlc = Hlc::new();
            let mut prev = HlcTimestamp::default();
            for pt in readings {
                let t = hlc.now(pt);
                prop_assert!(t > prev);
                prev = t;
            }
        }
    }
}
