//! Sequencer baselines (§2, §7.1).
//!
//! Traditional causally consistent geo-stores place one sequencer per
//! datacenter *in the client critical path*: every update synchronously
//! requests the next monotonically increasing number before returning.
//! This module provides that sequencer as a state machine plus its
//! fault-tolerant variant based on chain replication (van Renesse &
//! Schneider, OSDI '04), mirroring the implementations the paper measures
//! against Eunomia.

use crate::ids::ReplicaId;

/// A per-datacenter sequencer: a monotonically increasing counter.
///
/// The work per request is trivial; the throughput ceiling measured in the
/// paper comes from the synchronous round trip on every update, not from
/// this state machine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequencer {
    next: u64,
}

impl Sequencer {
    /// Creates a sequencer whose first issued number is 1.
    pub fn new() -> Self {
        Sequencer { next: 0 }
    }

    /// Issues the next sequence number (strictly increasing from 1).
    pub fn next_seq(&mut self) -> u64 {
        self.next += 1;
        self.next
    }

    /// Last issued number (0 if none yet).
    pub fn last(&self) -> u64 {
        self.next
    }
}

/// Role of a node within the replication chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainRole {
    /// First node: assigns sequence numbers and forwards down-chain.
    Head,
    /// Interior node: records and forwards.
    Middle,
    /// Last node: records and replies to the requesting partition.
    Tail,
}

/// What a chain node should do with an incoming request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainAction {
    /// Forward `seq` to the next node in the chain.
    Forward {
        /// Sequence number travelling down the chain.
        seq: u64,
    },
    /// Reply `seq` to the original requester (tail only).
    Reply {
        /// Sequence number to return.
        seq: u64,
    },
}

/// One node of the chain-replicated fault-tolerant sequencer.
///
/// Requests enter at the head, which assigns the number; each replica
/// records it while forwarding; the tail replies to the requester. A crash
/// reconfigures the chain by dropping the dead node (`reconfigure`); the
/// per-node `last_seq` state makes any surviving prefix/suffix consistent
/// because numbers are recorded in order.
#[derive(Clone, Copy, Debug)]
pub struct ChainNode {
    id: ReplicaId,
    role: ChainRole,
    last_seq: u64,
}

impl ChainNode {
    /// Creates a node with the given role.
    pub fn new(id: ReplicaId, role: ChainRole) -> Self {
        ChainNode {
            id,
            role,
            last_seq: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> ChainRole {
        self.role
    }

    /// Highest sequence number this node has recorded.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Handles a head request (a partition asking for the next number).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-head node — requests must enter at the
    /// head, exactly as in chain replication.
    pub fn on_request(&mut self) -> ChainAction {
        assert_eq!(self.role, ChainRole::Head, "requests enter at the head");
        self.last_seq += 1;
        if matches!(self.role, ChainRole::Head) && self.is_also_tail() {
            ChainAction::Reply { seq: self.last_seq }
        } else {
            ChainAction::Forward { seq: self.last_seq }
        }
    }

    fn is_also_tail(&self) -> bool {
        // A single-node chain is represented as a Head that must reply
        // directly; callers signal this by reconfiguring to chain length 1
        // via `make_solo`.
        false
    }

    /// Handles a forwarded sequence number from the predecessor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if numbers arrive out of order — links within the
    /// chain are FIFO.
    pub fn on_forward(&mut self, seq: u64) -> ChainAction {
        debug_assert_eq!(seq, self.last_seq + 1, "chain links are FIFO and gap-free");
        self.last_seq = seq;
        match self.role {
            ChainRole::Tail => ChainAction::Reply { seq },
            _ => ChainAction::Forward { seq },
        }
    }

    /// Reassigns this node's role after a chain reconfiguration (crash of
    /// a neighbour).
    pub fn reconfigure(&mut self, role: ChainRole) {
        self.role = role;
    }
}

/// Builds the roles for a chain of `n` nodes.
///
/// For `n == 1` the single node is a [`ChainRole::Tail`] — it records and
/// replies immediately (an unreplicated sequencer).
pub fn chain_roles(n: usize) -> Vec<ChainRole> {
    assert!(n > 0, "chain needs at least one node");
    (0..n)
        .map(|i| {
            if n == 1 || i == n - 1 {
                ChainRole::Tail
            } else if i == 0 {
                ChainRole::Head
            } else {
                ChainRole::Middle
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencer_is_strictly_monotone() {
        let mut s = Sequencer::new();
        let mut prev = 0;
        for _ in 0..1000 {
            let n = s.next_seq();
            assert_eq!(n, prev + 1);
            prev = n;
        }
        assert_eq!(s.last(), 1000);
    }

    #[test]
    fn three_node_chain_round_trip() {
        let roles = chain_roles(3);
        assert_eq!(
            roles,
            vec![ChainRole::Head, ChainRole::Middle, ChainRole::Tail]
        );
        let mut head = ChainNode::new(ReplicaId(0), roles[0]);
        let mut mid = ChainNode::new(ReplicaId(1), roles[1]);
        let mut tail = ChainNode::new(ReplicaId(2), roles[2]);
        for expect in 1..=5u64 {
            let ChainAction::Forward { seq } = head.on_request() else {
                panic!("head must forward")
            };
            let ChainAction::Forward { seq } = mid.on_forward(seq) else {
                panic!("middle must forward")
            };
            let ChainAction::Reply { seq } = tail.on_forward(seq) else {
                panic!("tail must reply")
            };
            assert_eq!(seq, expect);
        }
        assert_eq!(head.last_seq(), 5);
        assert_eq!(mid.last_seq(), 5);
        assert_eq!(tail.last_seq(), 5);
    }

    #[test]
    fn single_node_chain_is_a_tail() {
        assert_eq!(chain_roles(1), vec![ChainRole::Tail]);
    }

    #[test]
    fn reconfigure_after_tail_crash() {
        // 3-node chain loses its tail: the middle becomes tail.
        let mut mid = ChainNode::new(ReplicaId(1), ChainRole::Middle);
        mid.on_forward(1);
        mid.reconfigure(ChainRole::Tail);
        assert_eq!(mid.on_forward(2), ChainAction::Reply { seq: 2 });
    }

    #[test]
    fn reconfigure_after_head_crash() {
        // The middle node becomes head and keeps numbering from its state.
        let mut mid = ChainNode::new(ReplicaId(1), ChainRole::Middle);
        mid.on_forward(1);
        mid.on_forward(2);
        mid.reconfigure(ChainRole::Head);
        assert_eq!(mid.on_request(), ChainAction::Forward { seq: 3 });
    }

    #[test]
    #[should_panic(expected = "requests enter at the head")]
    fn request_at_tail_panics() {
        let mut tail = ChainNode::new(ReplicaId(2), ChainRole::Tail);
        let _ = tail.on_request();
    }
}
