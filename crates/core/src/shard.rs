//! Sharded fault-tolerant Eunomia for the threaded runtime's hot path.
//!
//! [`crate::replica::ReplicaState`] (Alg. 4 verbatim) keeps one global
//! red-black tree keyed by `(timestamp, partition)` and pays an ordered
//! insert plus a duplicate check **per id**. That is fine at simulator
//! scale, but it is exactly the cost the paper says a stabilizer must not
//! have: ids from one partition already arrive in timestamp order, so
//! ordering them again against every other partition's ids — before the
//! stable cutoff is even known — is wasted work.
//!
//! Audit note: this hot path is deliberately `unsafe`-free — the ring
//! buffers and the tournament tree are plain indexed `Vec`s — and the
//! seal below keeps it that way (the lock-free unsafe lives in
//! `vendor/crossbeam`, where every block carries a `SAFETY:` comment and
//! the `interleave` checker enumerates the ring's schedules).
//!
//! This module shards the replica into **per-feeder lanes**:
//!
//! * Each lane keeps the feeder's ids in arrival (= timestamp) order in a
//!   flat ring buffer, plus a **watermark** — the highest id accepted from
//!   that feeder. At-least-once redelivery is filtered by slicing a
//!   frame's already-seen prefix off with one binary search instead of a
//!   per-id map probe: the ack protocol (see [`LaneSender`]) guarantees a
//!   frame is a contiguous suffix of the feeder's ordered stream.
//! * The stable cutoff (`min` over lane watermarks) is maintained by a
//!   [`TournamentTree`], so a watermark advance costs `O(log lanes)` and
//!   reading the cutoff costs `O(1)`.
//! * Ids travel in [`BatchFrame`]s — one flat allocation per batch, not
//!   one per id, and the frame is reusable end to end.
//!
//! Stabilization drains each lane's stable prefix in place; ids of one
//! lane are emitted in timestamp order, lanes are emitted in lane order
//! (the global timestamp-sorted order of
//! [`ReplicaState`](crate::replica::ReplicaState) is not needed by
//! the service: stabilized ids are acknowledged back to their own feeder,
//! and the stable *time* is what remote datacenters consume).
//!
//! # The credit/watermark flow-control protocol
//!
//! Acks are not bare watermarks: every ack a replica returns is a
//! [`CreditGrant`] — the watermark *plus* a **credit**, the number of ids
//! beyond that watermark the replica is currently willing to accept from
//! this lane, plus a **pressure** byte (the replica's ingest-queue fill)
//! the feeder uses to size frames. Credits are what turn overload into
//! throttling instead of a retransmission storm: a drop-on-full receiver
//! converts a slow replica into duplicate traffic (every dropped frame is
//! re-sent wholesale after a timeout), while a credit window simply stops
//! the feeder at the source.
//!
//! Per `(lane, replica)` pair, the sender is a three-state machine driven
//! entirely by grants and the passage of time:
//!
//! ```text
//!              grant{credit > in_flight}
//!      ┌─────────────────────────────────────────┐
//!      ▼                                         │
//!   ┌──────┐ in_flight == credit  ┌───────────┐  │
//!   │ OPEN │ ───────────────────▶ │ EXHAUSTED │ ─┘
//!   └──────┘                      └───────────┘
//!      │                                │ no ack progress for
//!      │ no ack progress for            │ `retransmit_after`
//!      │ `retransmit_after`             ▼
//!      │                         ┌────────────┐
//!      └───────────────────────▶ │ RETRANSMIT │ ─▶ back to OPEN/EXHAUSTED
//!                                └────────────┘    on the next grant
//! ```
//!
//! * **OPEN** — `in_flight < credit`: [`LaneSender::build_frame`] may ship
//!   new ids, never more than the remaining credit.
//! * **EXHAUSTED** — `in_flight == credit` (in particular **a credit of 0
//!   means the feeder must not ship any ids at all**): the feeder parks
//!   the lane and waits for a fresh grant. Replicas re-advertise throttled
//!   lanes on their stabilization tick, so an exhausted lane reopens
//!   without the feeder having to poll. Heartbeats are exempt — an *empty*
//!   frame still carries the lane's liveness and costs the receiver one
//!   ring slot, not buffer space.
//! * **RETRANSMIT** — the safety net for lost frames or lost grants: after
//!   `retransmit_after` without ack progress the feeder re-ships from the
//!   ack floor, still inside the credit window. Under credit flow control
//!   this state is rare (nothing is dropped by design), so duplicate
//!   deliveries stay ~0 where the drop-on-full ring produced hundreds of
//!   millions.
//!
//! Invariants, checked by the proptests below:
//!
//! 1. **Credit bound** — a frame never carries ids beyond
//!    `ack + credit` (counting ids, not timestamps): the receiver's
//!    buffer exposure per lane is at most the credit it advertised.
//! 2. **Contiguous suffix** — every frame is a contiguous suffix of the
//!    feeder's ordered stream starting just above `max(ack, floor)`, so
//!    watermark dedup (one `partition_point`) remains sound under
//!    duplication and reordering of whole frames.
//! 3. **No loss** — ids are pruned from the window only when every live
//!    replica's watermark passes them; a grant can shrink credit but
//!    never un-acknowledge.
//!
//! The replica side derives grants in [`ShardedReplicaState::advertise`]:
//! `credit = (budget - lane_backlog) * (1 - queue_fill)`, where
//! `lane_backlog` is the lane's accepted-but-unstable backlog and
//! `queue_fill` is the ingest ring's occupancy. Backlog throttles lanes
//! that outrun stabilization; queue fill throttles everyone when the
//! replica itself falls behind.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use crate::eunomia::EunomiaError;
use crate::ids::{PartitionId, ReplicaId};
use crate::time::Timestamp;
use eunomia_collections::TournamentTree;
use std::collections::VecDeque;

/// Credit a lane starts with before its first grant arrives: optimistic
/// enough that first contact is not throttled (one default feeder window),
/// finite so a replica that never answers cannot be flooded forever.
pub const INITIAL_CREDIT: u32 = 4096;

/// One watermark-plus-credit acknowledgement from a replica to a feeder
/// lane — the unit of flow control (see the module docs for the protocol).
///
/// Grants supersede each other: a ring that drops one under load loses
/// nothing, because the next grant carries a fresher watermark and a
/// fresher credit. `ack` only ever advances; `credit` is *latest-wins*
/// (a replica under growing pressure legitimately shrinks it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditGrant {
    /// The granting replica.
    pub replica: ReplicaId,
    /// Watermark: highest id the replica has accepted from this lane.
    pub ack: Timestamp,
    /// Ids beyond `ack` the replica will accept from this lane. Zero
    /// means "send nothing until a later grant reopens the window".
    pub credit: u32,
    /// Ingest-queue fill, `0` (idle) to `255` (full): the feeder's frame
    /// sizing signal — small frames for latency while the queue is short,
    /// full frames for throughput as it approaches the high-water mark.
    pub pressure: u8,
}

/// One flat batch of operation ids from a feeder lane: the §5 id-only
/// metadata, one allocation per batch.
///
/// Invariants (upheld by [`LaneSender::build_frame`], debug-asserted at
/// ingest): `ids` is strictly ascending, and together with the receiving
/// lane's watermark it forms a contiguous suffix of the feeder's stream —
/// every unacknowledged id above some floor is present.
#[derive(Clone, Debug, Default)]
pub struct BatchFrame {
    /// The sending feeder lane.
    pub partition: PartitionId,
    /// Operation ids, strictly ascending.
    pub ids: Vec<Timestamp>,
    /// Optional idle heartbeat (Alg. 2 l. 10–12), `>=` every id in `ids`.
    pub heartbeat: Option<Timestamp>,
}

/// One ingested frame's ids, adopted whole into a lane's backlog;
/// `start` marks the prefix already drained (or deduplicated on entry).
struct Chunk {
    ids: Vec<Timestamp>,
    start: usize,
}

impl Chunk {
    fn live(&self) -> &[Timestamp] {
        &self.ids[self.start..]
    }
}

struct Lane {
    /// Highest id accepted from this feeder (its `PartitionTime`).
    watermark: Timestamp,
    /// Accepted, not-yet-stable ids in timestamp order, as a queue of
    /// frame chunks. Adopting each frame's allocation whole keeps ingest
    /// O(log frame) — no per-id copy into a flat buffer whose tail goes
    /// cache-cold as the lane count grows — and lets followers discard
    /// stable prefixes chunk-at-a-time with a binary search each.
    pending: VecDeque<Chunk>,
    /// Live (undrained) ids across `pending`.
    backlog: usize,
}

/// One replica of the sharded Eunomia service.
///
/// Semantically equivalent to [`ReplicaState`] over id-only payloads: same
/// ack values, same stable times, same leader/follower split. The
/// difference is purely mechanical — per-lane watermark dedup and ring
/// buffers instead of a global ordered map.
///
/// [`ReplicaState`]: crate::replica::ReplicaState
pub struct ShardedReplicaState {
    id: ReplicaId,
    leader: ReplicaId,
    lanes: Vec<Lane>,
    /// Min over lane watermarks = the stable cutoff.
    cutoffs: TournamentTree<Timestamp>,
    last_stable: Timestamp,
    pending: usize,
    total_accepted: u64,
    total_duplicates: u64,
}

impl ShardedReplicaState {
    /// Creates replica `id` with one lane per feeder partition; replica 0
    /// starts as leader by convention.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes` is zero.
    pub fn new(id: ReplicaId, n_lanes: usize) -> Self {
        assert!(n_lanes > 0, "Eunomia needs at least one feeder lane");
        ShardedReplicaState {
            id,
            leader: ReplicaId(0),
            lanes: (0..n_lanes)
                .map(|_| Lane {
                    watermark: Timestamp::ZERO,
                    pending: VecDeque::new(),
                    backlog: 0,
                })
                .collect(),
            cutoffs: TournamentTree::new(n_lanes, Timestamp::ZERO, Timestamp::MAX),
            last_stable: Timestamp::ZERO,
            pending: 0,
            total_accepted: 0,
            total_duplicates: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Ingests a frame (the sharded `NEW_BATCH` + `HEARTBEAT`): slices off
    /// the already-seen prefix, appends the rest to the lane, advances the
    /// watermark, and returns the ack — the lane's new watermark.
    ///
    /// Borrowing form of [`ingest_owned`](Self::ingest_owned); it clones
    /// the frame's ids, so hot paths that are done with the frame should
    /// pass it by value instead.
    pub fn ingest(&mut self, frame: &BatchFrame) -> Result<Timestamp, EunomiaError> {
        self.ingest_owned(frame.clone())
    }

    /// [`ingest`](Self::ingest), adopting the frame's allocation: the id
    /// vector moves into the lane's backlog as one chunk instead of being
    /// copied id-by-id, so ingest cost is a binary search plus a pointer
    /// move no matter how many lanes are cache-cold.
    pub fn ingest_owned(&mut self, frame: BatchFrame) -> Result<Timestamp, EunomiaError> {
        let idx = frame.partition.index();
        let lane = self
            .lanes
            .get_mut(idx)
            .ok_or(EunomiaError::UnknownPartition(frame.partition))?;
        debug_assert!(
            frame.ids.windows(2).all(|w| w[0] < w[1]),
            "frame ids must be strictly ascending"
        );
        // At-least-once dedup in one binary search: everything at or below
        // the watermark was delivered before.
        let fresh_from = frame.ids.partition_point(|&ts| ts <= lane.watermark);
        let fresh_n = frame.ids.len() - fresh_from;
        self.total_duplicates += fresh_from as u64;
        self.total_accepted += fresh_n as u64;
        if fresh_n > 0 {
            lane.watermark = *frame.ids.last().expect("fresh_n > 0");
            self.pending += fresh_n;
            lane.backlog += fresh_n;
            lane.pending.push_back(Chunk {
                ids: frame.ids,
                start: fresh_from,
            });
        }
        if let Some(hb) = frame.heartbeat {
            debug_assert!(
                fresh_n == 0 || hb >= lane.watermark,
                "heartbeat must dominate the frame's ids"
            );
            if hb > lane.watermark {
                lane.watermark = hb;
            }
        }
        self.cutoffs.update(idx, lane.watermark);
        Ok(lane.watermark)
    }

    /// `NEW_LEADER`.
    pub fn set_leader(&mut self, leader: ReplicaId) {
        self.leader = leader;
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.leader == self.id
    }

    /// Promotes this replica to leader. Stabilization resumes from
    /// `last_stable`; nothing is emitted twice and nothing is lost.
    pub fn promote(&mut self) {
        self.leader = self.id;
    }

    /// Current stable time: the minimum lane watermark, `O(1)`.
    pub fn stable_time(&self) -> Timestamp {
        *self.cutoffs.min()
    }

    /// Leader-side `PROCESS_STABLE`: drains every id at or below the
    /// stable cutoff, invoking `emit(lane, id)` per id (ids of a lane in
    /// timestamp order, lanes in index order), and returns the new stable
    /// time — or `None` if this replica is not the leader or the cutoff
    /// has not advanced.
    pub fn leader_process_stable_with(
        &mut self,
        emit: impl FnMut(PartitionId, Timestamp),
    ) -> Option<Timestamp> {
        self.leader_process_stable_up_to(Timestamp::MAX, emit)
    }

    /// [`leader_process_stable_with`], bounded by an external `cutoff`:
    /// drains ids at or below `min(cutoff, stable_time())`.
    ///
    /// This is the sharded-stabilizer entry point. When a replica's lane
    /// table is split across several stabilizer threads, each shard's
    /// tournament tree knows only *its* lanes' minimum; the true stable
    /// time is the minimum over every shard. The combiner folds the
    /// published per-shard minima into that global cutoff and each shard
    /// drains its own lanes up to it — never past its local minimum, and
    /// never past what the other shards have confirmed.
    ///
    /// [`leader_process_stable_with`]: Self::leader_process_stable_with
    pub fn leader_process_stable_up_to(
        &mut self,
        cutoff: Timestamp,
        mut emit: impl FnMut(PartitionId, Timestamp),
    ) -> Option<Timestamp> {
        if !self.is_leader() {
            return None;
        }
        let stable = self.stable_time().min(cutoff);
        if stable <= self.last_stable {
            return None;
        }
        for (idx, lane) in self.lanes.iter_mut().enumerate() {
            let p = PartitionId(idx as u32);
            // Chunk-batched drain: binary-search each chunk's stable
            // prefix, emit it, and release whole chunks as they empty.
            while let Some(chunk) = lane.pending.front_mut() {
                let live = chunk.live();
                let n = live.partition_point(|&ts| ts <= stable);
                if n == 0 {
                    break;
                }
                for &ts in &live[..n] {
                    emit(p, ts);
                }
                chunk.start += n;
                lane.backlog -= n;
                self.pending -= n;
                if chunk.start == chunk.ids.len() {
                    lane.pending.pop_front();
                } else {
                    break;
                }
            }
        }
        self.last_stable = stable;
        Some(stable)
    }

    /// Follower-side `STABLE`: discards ids the leader already processed.
    /// Returns how many were discarded.
    pub fn apply_stable(&mut self, stable: Timestamp) -> usize {
        if stable <= self.last_stable {
            return 0;
        }
        let mut discarded = 0;
        for lane in &mut self.lanes {
            // Followers never read the ids: a binary search per chunk
            // finds the stable prefix and whole chunks drop unread.
            while let Some(chunk) = lane.pending.front_mut() {
                let n = chunk.live().partition_point(|&ts| ts <= stable);
                if n == 0 {
                    break;
                }
                chunk.start += n;
                lane.backlog -= n;
                discarded += n;
                if chunk.start == chunk.ids.len() {
                    lane.pending.pop_front();
                } else {
                    break;
                }
            }
        }
        self.pending -= discarded;
        self.last_stable = stable;
        discarded
    }

    /// Number of buffered (accepted, unstable) ids.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Stable time most recently processed or learned.
    pub fn last_stable(&self) -> Timestamp {
        self.last_stable
    }

    /// Ids accepted (non-duplicate).
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted
    }

    /// Duplicate deliveries filtered out.
    pub fn total_duplicates(&self) -> u64 {
        self.total_duplicates
    }

    /// Watermark recorded for `partition`.
    pub fn watermark(&self, partition: PartitionId) -> Option<Timestamp> {
        self.lanes.get(partition.index()).map(|l| l.watermark)
    }

    /// Accepted-but-unstable ids buffered for `partition` — the lane's
    /// share of this replica's memory exposure, and the backlog term of
    /// the credit policy.
    pub fn lane_backlog(&self, partition: PartitionId) -> Option<usize> {
        self.lanes.get(partition.index()).map(|l| l.backlog)
    }

    /// Number of feeder lanes.
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Derives the [`CreditGrant`] to advertise to `partition`'s feeder:
    /// `credit = (budget - lane_backlog) * (1 - queue_fill)`.
    ///
    /// `budget` bounds the lane's accepted-but-unstable backlog (so a lane
    /// outrunning stabilization throttles itself), and `queue_fill` — the
    /// ingest ring's occupancy in `0.0..=1.0` — scales every lane down
    /// together when the replica cannot keep up with frame arrival. The
    /// grant carries the lane's current watermark as its ack and the fill
    /// as the `pressure` byte. Returns `None` for an unknown lane.
    pub fn advertise(
        &self,
        partition: PartitionId,
        queue_fill: f64,
        budget: u32,
    ) -> Option<CreditGrant> {
        let lane = self.lanes.get(partition.index())?;
        let fill = if queue_fill.is_finite() {
            queue_fill.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let backlog = lane.backlog.min(u32::MAX as usize) as u32;
        let free = budget.saturating_sub(backlog);
        Some(CreditGrant {
            replica: self.id,
            ack: lane.watermark,
            credit: (f64::from(free) * (1.0 - fill)) as u32,
            pressure: (fill * 255.0) as u8,
        })
    }
}

/// Feeder-side window of unacknowledged ids with per-replica watermark
/// acks and credit windows — the id-only, flat-buffer counterpart of
/// [`crate::replica::ReplicatedSender`].
///
/// The window is a ring of strictly ascending ids. Because acks are
/// watermarks and the window is ordered, building the retransmission
/// frame for a replica is one binary search plus a bulk copy, and pruning
/// is popping a prefix. Per replica the sender additionally tracks the
/// highest id *shipped* ([`note_sent`]) and the latest [`CreditGrant`],
/// and [`build_frame`] never emits ids past `ack + credit` — the sender
/// half of the flow-control state machine in the module docs.
///
/// [`note_sent`]: LaneSender::note_sent
/// [`build_frame`]: LaneSender::build_frame
#[derive(Clone, Debug)]
pub struct LaneSender {
    window: VecDeque<Timestamp>,
    acks: Vec<Timestamp>,
    alive: Vec<bool>,
    /// Latest advertised credit per replica (ids allowed beyond its ack).
    credits: Vec<u32>,
    /// Highest id shipped to each replica (floor for "new ids only").
    sent: Vec<Timestamp>,
}

impl LaneSender {
    /// Creates a sender replicating to `n_replicas` replicas; every lane
    /// starts `OPEN` with [`INITIAL_CREDIT`].
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn new(n_replicas: usize) -> Self {
        assert!(n_replicas > 0, "need at least one replica");
        LaneSender {
            window: VecDeque::new(),
            acks: vec![Timestamp::ZERO; n_replicas],
            alive: vec![true; n_replicas],
            credits: vec![INITIAL_CREDIT; n_replicas],
            sent: vec![Timestamp::ZERO; n_replicas],
        }
    }

    /// Number of window ids at or below `ts` (= the window index of the
    /// first id above it): one binary search over the deque's two slices.
    fn count_le(&self, ts: Timestamp) -> usize {
        let (a, b) = self.window.as_slices();
        match a.last() {
            Some(&last) if ts < last => a.partition_point(|&x| x <= ts),
            _ => a.len() + b.partition_point(|&x| x <= ts),
        }
    }

    /// Bulk-copies `window[start..end]` into `out`.
    fn copy_range(&self, start: usize, end: usize, out: &mut Vec<Timestamp>) {
        let (a, b) = self.window.as_slices();
        if start < a.len() {
            out.extend_from_slice(&a[start..end.min(a.len())]);
        }
        if end > a.len() {
            out.extend_from_slice(&b[start.saturating_sub(a.len())..end - a.len()]);
        }
    }

    /// Appends a freshly issued id to the window.
    ///
    /// # Panics
    ///
    /// Panics (debug) unless `ts` exceeds the window's newest id — the
    /// caller's clock must be monotone (Property 2).
    pub fn push(&mut self, ts: Timestamp) {
        debug_assert!(
            self.window.back().is_none_or(|&last| ts > last),
            "pushed ids must strictly increase"
        );
        self.window.push_back(ts);
    }

    /// Appends every windowed id above `floor` to `out` in timestamp
    /// order: one binary search, then bulk copies.
    pub fn append_above(&self, floor: Timestamp, out: &mut Vec<Timestamp>) {
        self.copy_range(self.count_le(floor), self.window.len(), out);
    }

    /// Builds the frame for `replica` reusing `ids`'s allocation: windowed
    /// ids above `max(ack, floor)`, truncated to the replica's remaining
    /// credit window (never past `ack + credit` ids) and to `max_ids`,
    /// plus the heartbeat.
    pub fn build_frame(
        &self,
        partition: PartitionId,
        replica: ReplicaId,
        floor: Timestamp,
        heartbeat: Option<Timestamp>,
        max_ids: usize,
        mut ids: Vec<Timestamp>,
    ) -> BatchFrame {
        ids.clear();
        let r = replica.index();
        let ack_idx = self.count_le(self.acks[r]);
        let start = if floor > self.acks[r] {
            self.count_le(floor)
        } else {
            ack_idx
        };
        let end = ack_idx
            .saturating_add(self.credits[r] as usize)
            .min(self.window.len())
            .min(start.saturating_add(max_ids))
            .max(start);
        self.copy_range(start, end, &mut ids);
        BatchFrame {
            partition,
            ids,
            heartbeat,
        }
    }

    /// Records a watermark ack from `replica` — leaving its credit
    /// unchanged — and prunes ids acknowledged by every live replica.
    /// Returns the number pruned.
    pub fn on_ack(&mut self, replica: ReplicaId, ts: Timestamp) -> usize {
        let slot = &mut self.acks[replica.index()];
        if ts > *slot {
            *slot = ts;
        }
        self.prune()
    }

    /// Applies a [`CreditGrant`]: folds the watermark in (acks only ever
    /// advance), replaces the credit (latest wins — pressure may shrink
    /// it), and prunes. Returns the number of ids pruned.
    pub fn on_grant(&mut self, grant: CreditGrant) -> usize {
        self.credits[grant.replica.index()] = grant.credit;
        self.on_ack(grant.replica, grant.ack)
    }

    /// Records that every id up to `ts` has been shipped to `replica`.
    pub fn note_sent(&mut self, replica: ReplicaId, ts: Timestamp) {
        let slot = &mut self.sent[replica.index()];
        if ts > *slot {
            *slot = ts;
        }
    }

    /// Highest id shipped to `replica` — the frame floor for "new ids
    /// only" sends.
    pub fn sent_of(&self, replica: ReplicaId) -> Timestamp {
        self.sent[replica.index()]
    }

    /// Latest credit advertised by `replica`.
    pub fn credit_of(&self, replica: ReplicaId) -> u32 {
        self.credits[replica.index()]
    }

    /// Ids shipped to `replica` but not yet acknowledged by it.
    pub fn in_flight(&self, replica: ReplicaId) -> usize {
        let r = replica.index();
        self.count_le(self.sent[r])
            .saturating_sub(self.count_le(self.acks[r]))
    }

    /// Unshipped ids that fit in `replica`'s remaining credit window —
    /// how many *new* ids the next frame may carry.
    pub fn sendable(&self, replica: ReplicaId) -> usize {
        let r = replica.index();
        self.count_le(self.acks[r])
            .saturating_add(self.credits[r] as usize)
            .min(self.window.len())
            .saturating_sub(self.count_le(self.sent[r]))
    }

    /// Whether the lane is credit-starved for `replica`: unshipped ids
    /// exist but the credit window (`EXHAUSTED` in the module docs'
    /// state machine) admits none of them.
    pub fn starved(&self, replica: ReplicaId) -> bool {
        self.count_le(self.sent[replica.index()]) < self.window.len() && self.sendable(replica) == 0
    }

    /// Marks a replica as crashed: its stalled ack no longer pins the
    /// window. Returns the number of ids pruned as a result.
    pub fn mark_dead(&mut self, replica: ReplicaId) -> usize {
        self.alive[replica.index()] = false;
        self.prune()
    }

    /// Marks a replica live again; it re-acks from the window's low
    /// watermark (a recovered replica rejoins by state transfer, not
    /// replay — same contract as `ReplicatedSender::mark_alive`) with a
    /// fresh [`INITIAL_CREDIT`] and nothing considered shipped.
    pub fn mark_alive(&mut self, replica: ReplicaId) {
        let r = replica.index();
        self.alive[r] = true;
        self.acks[r] = self.low_watermark();
        self.credits[r] = INITIAL_CREDIT;
        self.sent[r] = self.acks[r];
    }

    fn low_watermark(&self) -> Timestamp {
        self.window.front().map_or_else(
            || self.acks.iter().copied().max().unwrap_or(Timestamp::ZERO),
            |&ts| Timestamp(ts.0.saturating_sub(1)),
        )
    }

    fn prune(&mut self) -> usize {
        let min_ack = self
            .acks
            .iter()
            .zip(self.alive.iter())
            .filter(|(_, alive)| **alive)
            .map(|(a, _)| *a)
            .min()
            .unwrap_or(Timestamp::MAX);
        let mut pruned = 0;
        while self.window.front().is_some_and(|&ts| ts <= min_ack) {
            self.window.pop_front();
            pruned += 1;
        }
        pruned
    }

    /// Ids waiting for acknowledgement.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Highest watermark ack recorded for `replica`.
    pub fn ack_of(&self, replica: ReplicaId) -> Timestamp {
        self.acks[replica.index()]
    }
}

/// A [`CreditGrant`] tagged with the lane it is for.
///
/// The per-lane grant rings of the unmultiplexed service imply the lane
/// by construction; a [`GrantBatch`] carries grants for *many* lanes in
/// one ring entry, so each entry names its lane explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneGrant {
    /// The feeder lane this grant addresses.
    pub lane: PartitionId,
    /// The watermark-plus-credit acknowledgement itself.
    pub grant: CreditGrant,
}

/// One coalesced bundle of per-lane grants: a single ring entry (and a
/// single doorbell unpark) amortized over every lane a feeder thread
/// owns.
///
/// The unmultiplexed service acks every ingested frame with its own ring
/// entry and its own `unpark` — at 1024 lanes that is a doorbell storm
/// which starves the very drain that refills the credits. A replica
/// instead folds the sweep's grants into one `GrantBatch` per feeder
/// thread via [`GrantCoalescer`] and rings the doorbell at most once per
/// batch.
#[derive(Clone, Debug, Default)]
pub struct GrantBatch {
    /// At most one (folded) grant per lane, in ascending lane order.
    pub grants: Vec<LaneGrant>,
}

impl GrantBatch {
    /// Whether any lane in the batch received a credit worth a context
    /// switch — the doorbell predicate: a batch of zero-credit grants
    /// must not wake a parked feeder just to tell it "still full".
    pub fn workable(&self, min_credit: u32) -> bool {
        self.grants.iter().any(|g| g.grant.credit >= min_credit)
    }
}

/// Replica-side accumulator that folds per-frame [`CreditGrant`]s into
/// one [`GrantBatch`] per drain sweep for one feeder thread's lane range.
///
/// Folding two grants for the same lane keeps the **maximum ack** (acks
/// are watermarks and only ever advance) and the **latest credit and
/// pressure** (a replica under growing pressure legitimately shrinks the
/// window; the newest view wins). [`restore`](Self::restore) puts a batch
/// back after a failed send without clobbering anything fresher that was
/// noted in the meantime.
#[derive(Clone, Debug)]
pub struct GrantCoalescer {
    /// First lane of the feeder thread's range.
    base: PartitionId,
    /// Pending folded grant per lane (relative to `base`).
    slots: Vec<Option<CreditGrant>>,
    /// Number of occupied slots.
    occupied: usize,
}

impl GrantCoalescer {
    /// A coalescer covering lanes `base .. base + n_lanes`.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes` is zero.
    pub fn new(base: PartitionId, n_lanes: usize) -> Self {
        assert!(n_lanes > 0, "a feeder thread owns at least one lane");
        GrantCoalescer {
            base,
            slots: vec![None; n_lanes],
            occupied: 0,
        }
    }

    /// First lane of the covered range.
    pub fn base(&self) -> PartitionId {
        self.base
    }

    /// Number of lanes with a pending grant.
    pub fn pending(&self) -> usize {
        self.occupied
    }

    /// Folds a grant for `lane` into the pending batch: max ack, latest
    /// credit and pressure.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `lane` is outside the covered range.
    pub fn note(&mut self, lane: PartitionId, grant: CreditGrant) {
        let rel = lane.index().wrapping_sub(self.base.index());
        debug_assert!(rel < self.slots.len(), "lane outside coalescer range");
        let slot = &mut self.slots[rel];
        match slot {
            Some(prev) => {
                *slot = Some(CreditGrant {
                    replica: grant.replica,
                    ack: prev.ack.max(grant.ack),
                    credit: grant.credit,
                    pressure: grant.pressure,
                });
            }
            None => {
                *slot = Some(grant);
                self.occupied += 1;
            }
        }
    }

    /// Drains the pending grants into one [`GrantBatch`] (ascending lane
    /// order), reusing `batch`'s allocation. Returns `None` — handing the
    /// allocation back untouched — if nothing is pending.
    pub fn drain(&mut self, mut batch: GrantBatch) -> Option<GrantBatch> {
        if self.occupied == 0 {
            return None;
        }
        batch.grants.clear();
        for (rel, slot) in self.slots.iter_mut().enumerate() {
            if let Some(grant) = slot.take() {
                batch.grants.push(LaneGrant {
                    lane: PartitionId(self.base.0 + rel as u32),
                    grant,
                });
            }
        }
        self.occupied = 0;
        Some(batch)
    }

    /// Puts a batch back after a failed send. A lane that was re-noted
    /// since the drain keeps its fresher credit; only the monotone ack is
    /// folded in. Lanes without fresher grants get the batch's entry
    /// back verbatim, so the next sweep re-sends them.
    pub fn restore(&mut self, batch: &GrantBatch) {
        for lg in &batch.grants {
            let rel = lg.lane.index().wrapping_sub(self.base.index());
            debug_assert!(rel < self.slots.len(), "lane outside coalescer range");
            match &mut self.slots[rel] {
                Some(prev) => prev.ack = prev.ack.max(lg.grant.ack),
                slot @ None => {
                    *slot = Some(lg.grant);
                    self.occupied += 1;
                }
            }
        }
    }
}

/// One feeder thread's multiplexer over many logical partition lanes —
/// the paper's proxy deployment, where one node fronts many partitions.
///
/// Each logical lane keeps its own [`LaneSender`] (its window is its
/// partition's unacknowledged stream; its per-replica watermarks and
/// credits are *protocol* state and cannot be shared without changing
/// [`ShardedReplicaState`]'s dedup semantics — frames still carry the
/// lane tag and are still contiguous suffixes per lane). What the mux
/// shares is everything *thread-scoped*: one id budget across the lanes
/// (`window_len` is the pooled occupancy a feeder loop caps), one grant
/// ring, one park/unpark doorbell, one clock read per pass. Turning 1024
/// single-lane OS threads into 64 threads × 16 lanes removes the
/// scheduler fan-in cost while leaving the wire protocol byte-identical:
/// a `MuxSender` driving K lanes emits exactly the frames K independent
/// [`LaneSender`]s would (pinned by the proptests below).
#[derive(Clone, Debug)]
pub struct MuxSender {
    base: PartitionId,
    lanes: Vec<LaneSender>,
    /// Pooled window occupancy: sum of the lanes' window lengths.
    window_total: usize,
}

impl MuxSender {
    /// A mux over lanes `base .. base + n_lanes`, each replicating to
    /// `n_replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes` or `n_replicas` is zero.
    pub fn new(base: PartitionId, n_lanes: usize, n_replicas: usize) -> Self {
        assert!(n_lanes > 0, "a mux drives at least one lane");
        MuxSender {
            base,
            lanes: (0..n_lanes).map(|_| LaneSender::new(n_replicas)).collect(),
            window_total: 0,
        }
    }

    /// Number of logical lanes.
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// First lane of the range.
    pub fn base(&self) -> PartitionId {
        self.base
    }

    /// Global [`PartitionId`] of local lane `lane`.
    pub fn partition(&self, lane: usize) -> PartitionId {
        PartitionId(self.base.0 + lane as u32)
    }

    /// The lane's underlying sender (read-only; mutation goes through the
    /// mux so the pooled window count stays consistent).
    pub fn lane(&self, lane: usize) -> &LaneSender {
        &self.lanes[lane]
    }

    /// Pooled window occupancy across all lanes — the quantity a feeder
    /// thread budgets (one shared window for the thread, not one cap per
    /// lane).
    pub fn window_len(&self) -> usize {
        self.window_total
    }

    /// Window occupancy of one lane.
    pub fn lane_window_len(&self, lane: usize) -> usize {
        self.lanes[lane].window_len()
    }

    /// Appends a freshly issued id to `lane`'s window.
    ///
    /// # Panics
    ///
    /// Panics (debug) unless `ts` exceeds the lane's newest id.
    pub fn push(&mut self, lane: usize, ts: Timestamp) {
        self.lanes[lane].push(ts);
        self.window_total += 1;
    }

    /// Builds `lane`'s frame for `replica` (see [`LaneSender::build_frame`]);
    /// the frame is tagged with the lane's global [`PartitionId`].
    pub fn build_frame(
        &self,
        lane: usize,
        replica: ReplicaId,
        floor: Timestamp,
        heartbeat: Option<Timestamp>,
        max_ids: usize,
        ids: Vec<Timestamp>,
    ) -> BatchFrame {
        self.lanes[lane].build_frame(
            self.partition(lane),
            replica,
            floor,
            heartbeat,
            max_ids,
            ids,
        )
    }

    /// Applies a [`CreditGrant`] to `lane` (see [`LaneSender::on_grant`]).
    /// Returns the number of ids pruned from the lane's window.
    pub fn on_grant(&mut self, lane: usize, grant: CreditGrant) -> usize {
        let pruned = self.lanes[lane].on_grant(grant);
        self.window_total -= pruned;
        pruned
    }

    /// Records a bare watermark ack for `lane` (see [`LaneSender::on_ack`]).
    pub fn on_ack(&mut self, lane: usize, replica: ReplicaId, ts: Timestamp) -> usize {
        let pruned = self.lanes[lane].on_ack(replica, ts);
        self.window_total -= pruned;
        pruned
    }

    /// Marks `replica` crashed on every lane. Returns total ids pruned.
    pub fn mark_dead(&mut self, replica: ReplicaId) -> usize {
        let mut pruned = 0;
        for lane in &mut self.lanes {
            pruned += lane.mark_dead(replica);
        }
        self.window_total -= pruned;
        pruned
    }

    /// Marks `replica` live again on every lane (see
    /// [`LaneSender::mark_alive`]).
    pub fn mark_alive(&mut self, replica: ReplicaId) {
        for lane in &mut self.lanes {
            lane.mark_alive(replica);
        }
    }

    /// Records that every id up to `ts` shipped to `replica` on `lane`.
    pub fn note_sent(&mut self, lane: usize, replica: ReplicaId, ts: Timestamp) {
        self.lanes[lane].note_sent(replica, ts);
    }

    /// Highest id shipped to `replica` on `lane`.
    pub fn sent_of(&self, lane: usize, replica: ReplicaId) -> Timestamp {
        self.lanes[lane].sent_of(replica)
    }

    /// Latest credit `replica` advertised to `lane`.
    pub fn credit_of(&self, lane: usize, replica: ReplicaId) -> u32 {
        self.lanes[lane].credit_of(replica)
    }

    /// Unshipped ids of `lane` admitted by `replica`'s credit window.
    pub fn sendable(&self, lane: usize, replica: ReplicaId) -> usize {
        self.lanes[lane].sendable(replica)
    }

    /// Whether `lane` is credit-starved for `replica`.
    pub fn starved(&self, lane: usize, replica: ReplicaId) -> bool {
        self.lanes[lane].starved(replica)
    }

    /// Ids of `lane` shipped to `replica` but not yet acknowledged.
    pub fn in_flight(&self, lane: usize, replica: ReplicaId) -> usize {
        self.lanes[lane].in_flight(replica)
    }

    /// Highest watermark ack `replica` returned for `lane`.
    pub fn ack_of(&self, lane: usize, replica: ReplicaId) -> Timestamp {
        self.lanes[lane].ack_of(replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    fn frame(partition: u32, ids: &[u64]) -> BatchFrame {
        BatchFrame {
            partition: p(partition),
            ids: ids.iter().map(|&t| Timestamp(t)).collect(),
            heartbeat: None,
        }
    }

    #[test]
    fn duplicate_suffix_frames_are_sliced_off() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 1);
        let ack = r.ingest(&frame(0, &[1, 2])).unwrap();
        assert_eq!(ack, Timestamp(2));
        // Redelivery of the same prefix plus one new id.
        let ack = r.ingest(&frame(0, &[1, 2, 3])).unwrap();
        assert_eq!(ack, Timestamp(3));
        assert_eq!(r.total_accepted(), 3);
        assert_eq!(r.total_duplicates(), 2);
        assert_eq!(r.pending(), 3);
    }

    #[test]
    fn heartbeat_advances_watermark_without_ids() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 2);
        r.ingest(&frame(0, &[5])).unwrap();
        assert_eq!(r.stable_time(), Timestamp::ZERO, "lane 1 never spoke");
        let hb = BatchFrame {
            partition: p(1),
            ids: Vec::new(),
            heartbeat: Some(Timestamp(9)),
        };
        assert_eq!(r.ingest(&hb).unwrap(), Timestamp(9));
        assert_eq!(r.stable_time(), Timestamp(5));
    }

    #[test]
    fn unknown_lane_is_rejected() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 2);
        assert!(matches!(
            r.ingest(&frame(5, &[1])),
            Err(EunomiaError::UnknownPartition(PartitionId(5)))
        ));
    }

    #[test]
    fn only_leader_processes_stable_and_follower_discards() {
        let mut leader = ShardedReplicaState::new(ReplicaId(0), 1);
        let mut follower = ShardedReplicaState::new(ReplicaId(1), 1);
        for r in [&mut leader, &mut follower] {
            r.set_leader(ReplicaId(0));
            r.ingest(&frame(0, &[5])).unwrap();
        }
        let mut out = Vec::new();
        assert!(follower
            .leader_process_stable_with(|_, ts| out.push(ts))
            .is_none());
        let stable = leader
            .leader_process_stable_with(|_, ts| out.push(ts))
            .unwrap();
        assert_eq!(stable, Timestamp(5));
        assert_eq!(out, vec![Timestamp(5)]);
        assert_eq!(follower.apply_stable(stable), 1);
        assert_eq!(follower.pending(), 0);
        assert_eq!(follower.apply_stable(Timestamp(4)), 0, "stale ignored");
    }

    #[test]
    fn failover_emits_no_duplicates_and_loses_nothing() {
        let ids: Vec<u64> = (1..=10).collect();
        let mut r0 = ShardedReplicaState::new(ReplicaId(0), 1);
        let mut r1 = ShardedReplicaState::new(ReplicaId(1), 1);
        for r in [&mut r0, &mut r1] {
            r.set_leader(ReplicaId(0));
            r.ingest(&frame(0, &ids[..6])).unwrap();
        }
        let mut emitted = Vec::new();
        let stable = r0
            .leader_process_stable_with(|_, ts| emitted.push(ts.0))
            .unwrap();
        r1.apply_stable(stable);
        // r0 crashes; r1 takes over with the remaining ids.
        r1.ingest(&frame(0, &ids[6..])).unwrap();
        r1.promote();
        r1.leader_process_stable_with(|_, ts| emitted.push(ts.0))
            .unwrap();
        assert_eq!(emitted, ids);
    }

    #[test]
    fn stable_cutoff_is_min_across_many_lanes() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 16);
        for lane in 0..16u32 {
            r.ingest(&frame(lane, &[100 + lane as u64])).unwrap();
        }
        assert_eq!(r.stable_time(), Timestamp(100));
        let mut n = 0;
        let stable = r.leader_process_stable_with(|_, _| n += 1).unwrap();
        assert_eq!(stable, Timestamp(100));
        assert_eq!(n, 1, "only lane 0's id is at or below the cutoff");
        assert_eq!(r.pending(), 15);
    }

    #[test]
    fn sender_builds_suffix_frames_and_prunes_on_acks() {
        let mut s = LaneSender::new(2);
        for t in 1..=5u64 {
            s.push(Timestamp(t));
        }
        let f = s.build_frame(
            p(0),
            ReplicaId(0),
            Timestamp::ZERO,
            None,
            usize::MAX,
            Vec::new(),
        );
        assert_eq!(f.ids.len(), 5);
        s.on_ack(ReplicaId(0), Timestamp(5));
        assert_eq!(s.window_len(), 5, "replica 1 silent: window pinned");
        // Floor above the ack: only unsent ids.
        let f = s.build_frame(p(0), ReplicaId(1), Timestamp(3), None, usize::MAX, f.ids);
        assert_eq!(f.ids, vec![Timestamp(4), Timestamp(5)]);
        s.on_ack(ReplicaId(1), Timestamp(5));
        assert_eq!(s.window_len(), 0);
    }

    #[test]
    fn dead_replica_stops_pinning_window() {
        let mut s = LaneSender::new(3);
        for t in 1..=5u64 {
            s.push(Timestamp(t));
        }
        s.on_ack(ReplicaId(0), Timestamp(5));
        s.on_ack(ReplicaId(1), Timestamp(5));
        assert_eq!(s.window_len(), 5);
        assert_eq!(s.mark_dead(ReplicaId(2)), 5);
        assert_eq!(s.window_len(), 0);
        s.mark_alive(ReplicaId(2));
        assert_eq!(s.ack_of(ReplicaId(2)), Timestamp(5));
    }

    #[test]
    fn credit_caps_frames_and_reopens_on_grant() {
        let mut s = LaneSender::new(1);
        let rid = ReplicaId(0);
        for t in 1..=10u64 {
            s.push(Timestamp(t));
        }
        // Shrink the window to 3: only ids 1..=3 may ship.
        s.on_grant(CreditGrant {
            replica: rid,
            ack: Timestamp::ZERO,
            credit: 3,
            pressure: 0,
        });
        assert_eq!(s.sendable(rid), 3);
        let f = s.build_frame(p(0), rid, s.sent_of(rid), None, usize::MAX, Vec::new());
        assert_eq!(f.ids, vec![Timestamp(1), Timestamp(2), Timestamp(3)]);
        s.note_sent(rid, Timestamp(3));
        // EXHAUSTED: in_flight == credit, nothing more may ship.
        assert_eq!(s.in_flight(rid), 3);
        assert_eq!(s.sendable(rid), 0);
        assert!(s.starved(rid));
        let f = s.build_frame(p(0), rid, s.sent_of(rid), None, usize::MAX, f.ids);
        assert!(f.ids.is_empty(), "exhausted lane must ship nothing");
        // A retransmit pass (floor = ZERO) stays inside the credit window.
        let f = s.build_frame(p(0), rid, Timestamp::ZERO, None, usize::MAX, f.ids);
        assert_eq!(f.ids.len(), 3, "retransmit re-ships in-flight ids only");
        // The grant acks 3 and reopens 4 more: OPEN again.
        s.on_grant(CreditGrant {
            replica: rid,
            ack: Timestamp(3),
            credit: 4,
            pressure: 0,
        });
        assert_eq!(s.window_len(), 7, "acked prefix pruned");
        assert_eq!(s.in_flight(rid), 0);
        assert_eq!(s.sendable(rid), 4);
        assert!(!s.starved(rid));
        // A zero-credit grant closes the lane entirely.
        s.on_grant(CreditGrant {
            replica: rid,
            ack: Timestamp(3),
            credit: 0,
            pressure: 255,
        });
        assert_eq!(s.sendable(rid), 0);
        assert!(s.starved(rid));
        let f = s.build_frame(p(0), rid, s.sent_of(rid), None, usize::MAX, f.ids);
        assert!(f.ids.is_empty(), "credit 0 means send nothing");
    }

    #[test]
    fn max_ids_truncates_frames_below_credit() {
        let mut s = LaneSender::new(1);
        for t in 1..=8u64 {
            s.push(Timestamp(t));
        }
        let f = s.build_frame(p(0), ReplicaId(0), Timestamp::ZERO, None, 2, Vec::new());
        assert_eq!(f.ids, vec![Timestamp(1), Timestamp(2)]);
    }

    #[test]
    fn advertise_scales_credit_by_backlog_and_queue_fill() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 2);
        let ids: Vec<u64> = (1..=100).collect();
        r.ingest(&frame(0, &ids)).unwrap();
        // Idle queue: credit = budget - backlog.
        let g = r.advertise(p(0), 0.0, 1000).unwrap();
        assert_eq!(g.replica, ReplicaId(0));
        assert_eq!(g.ack, Timestamp(100));
        assert_eq!(g.credit, 900);
        assert_eq!(g.pressure, 0);
        assert_eq!(r.lane_backlog(p(0)), Some(100));
        // Half-full queue halves the credit; pressure reflects the fill.
        let g = r.advertise(p(0), 0.5, 1000).unwrap();
        assert_eq!(g.credit, 450);
        assert_eq!(g.pressure, 127);
        // Backlog beyond the budget or a full queue closes the window.
        assert_eq!(r.advertise(p(0), 1.0, 1000).unwrap().credit, 0);
        assert_eq!(r.advertise(p(0), 0.0, 50).unwrap().credit, 0);
        // An idle lane gets the full budget, and out-of-range fill clamps.
        assert_eq!(r.advertise(p(1), -3.0, 1000).unwrap().credit, 1000);
        assert_eq!(r.advertise(p(1), f64::NAN, 1000).unwrap().credit, 0);
        assert!(r.advertise(p(9), 0.0, 1000).is_none());
        // Draining the stable prefix frees backlog, reopening credit.
        let hb = BatchFrame {
            partition: p(1),
            ids: Vec::new(),
            heartbeat: Some(Timestamp(200)),
        };
        r.ingest(&hb).unwrap();
        r.leader_process_stable_with(|_, _| {});
        assert_eq!(r.advertise(p(0), 0.0, 1000).unwrap().credit, 1000);
    }

    #[test]
    fn cutoff_bounded_drain_never_passes_the_combined_minimum() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 2);
        r.ingest(&frame(0, &[3, 7])).unwrap();
        r.ingest(&frame(1, &[9])).unwrap();
        // Local minimum is 7 (lane 0's watermark), but another shard's
        // published minimum caps the combined cutoff at 5.
        let mut out = Vec::new();
        let stable = r
            .leader_process_stable_up_to(Timestamp(5), |_, ts| out.push(ts))
            .unwrap();
        assert_eq!(stable, Timestamp(5));
        assert_eq!(out, vec![Timestamp(3)]);
        assert_eq!(r.pending(), 2);
        // A cutoff at or below what was already drained is a no-op.
        assert!(r
            .leader_process_stable_up_to(Timestamp(5), |_, _| panic!("no ids"))
            .is_none());
        // The unbounded form still drains to the local minimum.
        out.clear();
        let stable = r.leader_process_stable_with(|_, ts| out.push(ts)).unwrap();
        assert_eq!(stable, Timestamp(7));
        assert_eq!(out, vec![Timestamp(7)]);
    }

    fn grant(replica: u32, ack: u64, credit: u32, pressure: u8) -> CreditGrant {
        CreditGrant {
            replica: ReplicaId(replica),
            ack: Timestamp(ack),
            credit,
            pressure,
        }
    }

    #[test]
    fn coalescer_folds_one_batch_per_sweep_with_monotone_acks() {
        let mut c = GrantCoalescer::new(p(8), 4);
        // Three grants for lane 9 within one sweep: the ack is monotone
        // (a late-arriving older ack cannot regress it), the credit and
        // pressure are latest-wins.
        c.note(p(9), grant(0, 10, 100, 0));
        c.note(p(9), grant(0, 25, 80, 3));
        c.note(p(9), grant(0, 20, 60, 9));
        c.note(p(8), grant(0, 5, 0, 255));
        assert_eq!(c.pending(), 2);
        // One drain yields ONE batch carrying every dirty lane, ascending.
        let batch = c.drain(GrantBatch::default()).unwrap();
        assert_eq!(batch.grants.len(), 2);
        assert_eq!(batch.grants[0].lane, p(8));
        assert_eq!(batch.grants[0].grant, grant(0, 5, 0, 255));
        assert_eq!(batch.grants[1].lane, p(9));
        assert_eq!(batch.grants[1].grant, grant(0, 25, 60, 9));
        // The doorbell predicate: rings iff some lane's credit clears the
        // threshold — a batch of zero-credit grants must stay silent.
        assert!(batch.workable(60));
        assert!(!batch.workable(61));
        let mut silent = GrantCoalescer::new(p(0), 1);
        silent.note(p(0), grant(0, 5, 0, 255));
        assert!(!silent.drain(GrantBatch::default()).unwrap().workable(1));
        // Drained clean: the next sweep has nothing, i.e. one ring entry
        // (and at most one unpark) per sweep, not per lane or per frame.
        assert_eq!(c.pending(), 0);
        assert!(c.drain(GrantBatch::default()).is_none());
    }

    #[test]
    fn coalescer_restore_keeps_fresher_grants() {
        let mut c = GrantCoalescer::new(p(0), 2);
        c.note(p(0), grant(0, 10, 50, 0));
        c.note(p(1), grant(0, 7, 20, 0));
        let batch = c.drain(GrantBatch::default()).unwrap();
        // Lane 0 got a fresher grant between drain and the failed send.
        c.note(p(0), grant(0, 12, 90, 1));
        c.restore(&batch);
        let again = c.drain(GrantBatch::default()).unwrap();
        assert_eq!(again.grants.len(), 2);
        // Fresher credit survives the restore; the ack stays monotone.
        assert_eq!(again.grants[0].grant, grant(0, 12, 90, 1));
        // Lane 1 had nothing fresher: the batch entry comes back verbatim.
        assert_eq!(again.grants[1].grant, grant(0, 7, 20, 0));
    }

    #[test]
    fn mux_tracks_pooled_window_and_marks_replicas_per_lane() {
        let mut m = MuxSender::new(p(4), 2, 2);
        assert_eq!(m.partition(1), p(5));
        m.push(0, Timestamp(1));
        m.push(0, Timestamp(2));
        m.push(1, Timestamp(3));
        assert_eq!(m.window_len(), 3);
        assert_eq!(m.lane_window_len(0), 2);
        let f = m.build_frame(
            0,
            ReplicaId(0),
            Timestamp::ZERO,
            None,
            usize::MAX,
            Vec::new(),
        );
        assert_eq!(f.partition, p(4), "frames carry the global lane tag");
        assert_eq!(f.ids.len(), 2);
        // Replica 0 acks lane 0; replica 1 still pins it.
        assert_eq!(m.on_ack(0, ReplicaId(0), Timestamp(2)), 0);
        assert_eq!(m.mark_dead(ReplicaId(1)), 2);
        assert_eq!(m.window_len(), 1);
        m.mark_alive(ReplicaId(1));
        assert_eq!(m.credit_of(0, ReplicaId(1)), INITIAL_CREDIT);
        assert_eq!(
            m.on_grant(1, grant(0, 3, 10, 0)) + m.on_grant(1, grant(1, 3, 10, 0)),
            1
        );
        assert_eq!(m.window_len(), 0);
    }

    #[test]
    fn append_above_spans_the_deque_wrap_point() {
        let mut s = LaneSender::new(1);
        // Force a wrapped deque: push, prune, push more.
        for t in 1..=8u64 {
            s.push(Timestamp(t));
        }
        s.on_ack(ReplicaId(0), Timestamp(6));
        for t in 9..=12u64 {
            s.push(Timestamp(t));
        }
        let mut out = Vec::new();
        s.append_above(Timestamp(7), &mut out);
        assert_eq!(
            out,
            (8..=12).map(Timestamp).collect::<Vec<_>>(),
            "suffix must be correct regardless of ring layout"
        );
        out.clear();
        s.append_above(Timestamp::ZERO, &mut out);
        assert_eq!(out.len(), s.window_len());
    }

    proptest! {
        /// The sharded replica agrees with the reference `ReplicaState`
        /// under lossy, duplicating, multi-replica delivery: same acks,
        /// same stable times, same accepted id sets.
        #[test]
        fn agrees_with_reference_replica_under_loss(
            n_ops in 1usize..40,
            plan in proptest::collection::vec((0usize..3, proptest::bool::ANY), 0..120),
        ) {
            use crate::replica::{ReplicaState, ReplicatedSender};
            let mut sender = LaneSender::new(3);
            let mut reference_sender: ReplicatedSender<u64> = ReplicatedSender::new(3);
            let mut sharded: Vec<ShardedReplicaState> =
                (0..3).map(|i| ShardedReplicaState::new(ReplicaId(i), 1)).collect();
            let mut reference: Vec<ReplicaState<u64>> =
                (0..3).map(|i| ReplicaState::new(ReplicaId(i), 1)).collect();
            let mut produced = 0u64;
            for (target, drop) in plan {
                if produced < n_ops as u64 {
                    produced += 1;
                    sender.push(Timestamp(produced));
                    reference_sender.push(Timestamp(produced), produced);
                }
                let rid = ReplicaId(target as u32);
                let f = sender.build_frame(p(0), rid, Timestamp::ZERO, None, usize::MAX, Vec::new());
                let ref_batch = reference_sender.batch_for(rid);
                prop_assert_eq!(
                    f.ids.clone(),
                    ref_batch.iter().map(|(ts, _)| *ts).collect::<Vec<_>>()
                );
                if !drop && !f.ids.is_empty() {
                    let ack = sharded[target].ingest(&f).unwrap();
                    let ref_ack = reference[target].new_batch(p(0), ref_batch).unwrap();
                    prop_assert_eq!(ack, ref_ack);
                    sender.on_ack(rid, ack);
                    reference_sender.on_ack(rid, ref_ack);
                }
                for (s, r) in sharded.iter().zip(reference.iter()) {
                    prop_assert_eq!(s.stable_time(), r.stable_time());
                    prop_assert_eq!(s.pending(), r.pending());
                }
            }
        }

        /// The flow-control state machine under ring-full discards, lost
        /// grants, and duplicating retransmissions: frames never exceed
        /// the advertised credit, the sharded replica agrees with the
        /// reference `ReplicaState` throughout, and once credit reopens
        /// every produced id is accepted exactly once.
        #[test]
        fn credits_throttle_without_losing_ids(
            n_ops in 1usize..50,
            budget in 1u32..24,
            plan in proptest::collection::vec((0usize..2, 0u8..5), 0..200),
        ) {
            use crate::replica::ReplicaState;
            let mut sender = LaneSender::new(2);
            let mut sharded: Vec<ShardedReplicaState> =
                (0..2).map(|i| ShardedReplicaState::new(ReplicaId(i), 1)).collect();
            let mut reference: Vec<ReplicaState<u64>> =
                (0..2).map(|i| ReplicaState::new(ReplicaId(i), 1)).collect();
            for r in &mut sharded {
                r.promote();
            }
            for (i, r) in reference.iter_mut().enumerate() {
                r.set_leader(ReplicaId(i as u32));
            }
            let mut produced = 0u64;
            for (target, action) in plan {
                if produced < n_ops as u64 {
                    produced += 1;
                    sender.push(Timestamp(produced));
                }
                let rid = ReplicaId(target as u32);
                if action == 4 {
                    // Stabilize: drain the backlog, freeing credit budget.
                    sharded[target].leader_process_stable_with(|_, _| {});
                    let mut sink = Vec::new();
                    reference[target].leader_process_stable(&mut sink);
                    let g = sharded[target].advertise(p(0), 0.0, budget).unwrap();
                    sender.on_grant(g);
                    continue;
                }
                let retransmit = action == 3;
                let floor = if retransmit { Timestamp::ZERO } else { sender.sent_of(rid) };
                let in_flight = sender.in_flight(rid);
                let frame = sender.build_frame(p(0), rid, floor, None, usize::MAX, Vec::new());
                // Credit-bound invariant: ids beyond the ack never exceed
                // the advertised window.
                if retransmit {
                    prop_assert!(frame.ids.len() <= sender.credit_of(rid) as usize);
                } else {
                    prop_assert!(in_flight + frame.ids.len() <= sender.credit_of(rid) as usize);
                }
                prop_assert!(frame.ids.windows(2).all(|w| w[0] < w[1]));
                if action == 1 {
                    continue; // Ring full: frame discarded before sending.
                }
                if frame.ids.is_empty() {
                    continue;
                }
                let ack = sharded[target].ingest(&frame).unwrap();
                let ref_ack = reference[target]
                    .new_batch(p(0), frame.ids.iter().map(|&ts| (ts, ts.0)))
                    .unwrap();
                prop_assert_eq!(ack, ref_ack);
                prop_assert_eq!(
                    sharded[target].total_duplicates(),
                    reference[target].total_duplicates()
                );
                prop_assert_eq!(
                    sharded[target].stable_time(),
                    reference[target].stable_time()
                );
                sender.note_sent(rid, *frame.ids.last().unwrap());
                if action != 2 {
                    // Action 2 loses the grant; the sender's view goes stale.
                    let g = sharded[target].advertise(p(0), 0.0, budget).unwrap();
                    sender.on_grant(g);
                }
            }
            // Recovery: open the window and retransmit until both replicas
            // hold every produced id exactly once.
            for target in 0..2usize {
                let rid = ReplicaId(target as u32);
                loop {
                    let g = sharded[target].advertise(p(0), 0.0, u32::MAX).unwrap();
                    sender.on_grant(g);
                    let frame =
                        sender.build_frame(p(0), rid, Timestamp::ZERO, None, usize::MAX, Vec::new());
                    if frame.ids.is_empty() {
                        break;
                    }
                    let ack = sharded[target].ingest(&frame).unwrap();
                    let ref_ack = reference[target]
                        .new_batch(p(0), frame.ids.iter().map(|&ts| (ts, ts.0)))
                        .unwrap();
                    prop_assert_eq!(ack, ref_ack);
                    sender.note_sent(rid, *frame.ids.last().unwrap());
                }
                prop_assert_eq!(sharded[target].total_accepted(), produced);
                prop_assert_eq!(sharded[target].stable_time(), Timestamp(produced));
                prop_assert_eq!(
                    sharded[target].stable_time(),
                    reference[target].stable_time()
                );
            }
        }

        /// A `MuxSender` driving K lanes is id-for-id equivalent to K
        /// independent `LaneSender`s against the reference `ReplicaState`,
        /// under frame loss, duplicated (re-sent) frames, and lost grants:
        /// identical frames on the wire, identical acks, identical credit
        /// windows, identical stable times.
        #[test]
        fn mux_is_equivalent_to_independent_lane_senders(
            n_lanes in 1usize..5,
            budget in 1u32..32,
            plan in proptest::collection::vec(
                // (lane pick, replica pick, action): 0 = send+grant,
                // 1 = frame lost, 2 = grant lost, 3 = duplicate resend,
                // 4 = stabilize + re-advertise.
                (0usize..5, 0usize..2, 0u8..5),
                0..160,
            ),
        ) {
            use crate::replica::ReplicaState;
            let n_replicas = 2usize;
            let base = p(3); // Non-zero base: global/local mapping exercised.
            let mut mux = MuxSender::new(base, n_lanes, n_replicas);
            let mut solo: Vec<LaneSender> =
                (0..n_lanes).map(|_| LaneSender::new(n_replicas)).collect();
            // One replica pair per flavour, each with `n_lanes` lanes
            // (lane l is local index l, global PartitionId base + l).
            let mut via_mux: Vec<ShardedReplicaState> =
                (0..n_replicas).map(|i| ShardedReplicaState::new(ReplicaId(i as u32), n_lanes)).collect();
            let mut via_solo: Vec<ReplicaState<u64>> =
                (0..n_replicas).map(|i| ReplicaState::new(ReplicaId(i as u32), n_lanes)).collect();
            for r in &mut via_mux {
                r.promote();
            }
            for (i, r) in via_solo.iter_mut().enumerate() {
                r.set_leader(ReplicaId(i as u32));
            }
            let mut next_ts = 0u64;
            for (lane_pick, target, action) in plan {
                let lane = lane_pick % n_lanes;
                let rid = ReplicaId(target as u32);
                // Issue one id on the picked lane in both flavours.
                next_ts += 1;
                mux.push(lane, Timestamp(next_ts));
                solo[lane].push(Timestamp(next_ts));
                prop_assert_eq!(
                    mux.window_len(),
                    solo.iter().map(|s| s.window_len()).sum::<usize>(),
                    "pooled window must equal the sum of independent windows"
                );
                if action == 4 {
                    via_mux[target].leader_process_stable_with(|_, _| {});
                    let mut sink = Vec::new();
                    via_solo[target].leader_process_stable(&mut sink);
                    for (l, solo_lane) in solo.iter_mut().enumerate() {
                        let g = via_mux[target].advertise(p(l as u32), 0.0, budget).unwrap();
                        mux.on_grant(l, g);
                        solo_lane.on_grant(g);
                    }
                    continue;
                }
                let floor = if action == 3 {
                    Timestamp::ZERO // Wholesale duplicate resend.
                } else {
                    mux.sent_of(lane, rid)
                };
                prop_assert_eq!(mux.sent_of(lane, rid), solo[lane].sent_of(rid));
                prop_assert_eq!(mux.sendable(lane, rid), solo[lane].sendable(rid));
                prop_assert_eq!(mux.starved(lane, rid), solo[lane].starved(rid));
                let mf = mux.build_frame(lane, rid, floor, None, usize::MAX, Vec::new());
                let sf = solo[lane].build_frame(
                    PartitionId(base.0 + lane as u32), rid, floor, None, usize::MAX, Vec::new());
                prop_assert_eq!(&mf.ids, &sf.ids, "wire frames must be identical");
                prop_assert_eq!(mf.partition, sf.partition);
                if action == 1 || mf.ids.is_empty() {
                    continue; // Frame lost in flight (or nothing to ship).
                }
                let last = *mf.ids.last().unwrap();
                mux.note_sent(lane, rid, last);
                solo[lane].note_sent(rid, last);
                // Deliver: the mux replica ingests the global-tagged frame
                // rebased to its local lane index, the solo replica the
                // reference flavour.
                let mut local = mf.clone();
                local.partition = p(lane as u32);
                let ack = via_mux[target].ingest(&local).unwrap();
                let ref_ack = via_solo[target]
                    .new_batch(p(lane as u32), sf.ids.iter().map(|&ts| (ts, ts.0)))
                    .unwrap();
                prop_assert_eq!(ack, ref_ack);
                prop_assert_eq!(via_mux[target].stable_time(), via_solo[target].stable_time());
                prop_assert_eq!(
                    via_mux[target].pending(),
                    via_solo[target].pending()
                );
                if action != 2 {
                    // Grant delivered to both flavours; action 2 loses it.
                    let g = via_mux[target].advertise(p(lane as u32), 0.0, budget).unwrap();
                    mux.on_grant(lane, g);
                    solo[lane].on_grant(g);
                    prop_assert_eq!(mux.credit_of(lane, rid), solo[lane].credit_of(rid));
                    prop_assert_eq!(mux.ack_of(lane, rid), solo[lane].ack_of(rid));
                    prop_assert_eq!(mux.in_flight(lane, rid), solo[lane].in_flight(rid));
                }
            }
        }
    }
}
