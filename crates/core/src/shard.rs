//! Sharded fault-tolerant Eunomia for the threaded runtime's hot path.
//!
//! [`crate::replica::ReplicaState`] (Alg. 4 verbatim) keeps one global
//! red-black tree keyed by `(timestamp, partition)` and pays an ordered
//! insert plus a duplicate check **per id**. That is fine at simulator
//! scale, but it is exactly the cost the paper says a stabilizer must not
//! have: ids from one partition already arrive in timestamp order, so
//! ordering them again against every other partition's ids — before the
//! stable cutoff is even known — is wasted work.
//!
//! Audit note: this hot path is deliberately `unsafe`-free — the ring
//! buffers and the tournament tree are plain indexed `Vec`s — and the
//! seal below keeps it that way (the lock-free unsafe lives in
//! `vendor/crossbeam`, where every block carries a `SAFETY:` comment and
//! the `interleave` checker enumerates the ring's schedules).
//!
//! This module shards the replica into **per-feeder lanes**:
//!
//! * Each lane keeps the feeder's ids in arrival (= timestamp) order in a
//!   flat ring buffer, plus a **watermark** — the highest id accepted from
//!   that feeder. At-least-once redelivery is filtered by slicing a
//!   frame's already-seen prefix off with one binary search instead of a
//!   per-id map probe: the ack protocol (see [`LaneSender`]) guarantees a
//!   frame is a contiguous suffix of the feeder's ordered stream.
//! * The stable cutoff (`min` over lane watermarks) is maintained by a
//!   [`TournamentTree`], so a watermark advance costs `O(log lanes)` and
//!   reading the cutoff costs `O(1)`.
//! * Ids travel in [`BatchFrame`]s — one flat allocation per batch, not
//!   one per id, and the frame is reusable end to end.
//!
//! Stabilization drains each lane's stable prefix in place; ids of one
//! lane are emitted in timestamp order, lanes are emitted in lane order
//! (the global timestamp-sorted order of
//! [`ReplicaState`](crate::replica::ReplicaState) is not needed by
//! the service: stabilized ids are acknowledged back to their own feeder,
//! and the stable *time* is what remote datacenters consume).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use crate::eunomia::EunomiaError;
use crate::ids::{PartitionId, ReplicaId};
use crate::time::Timestamp;
use eunomia_collections::TournamentTree;
use std::collections::VecDeque;

/// One flat batch of operation ids from a feeder lane: the §5 id-only
/// metadata, one allocation per batch.
///
/// Invariants (upheld by [`LaneSender::build_frame`], debug-asserted at
/// ingest): `ids` is strictly ascending, and together with the receiving
/// lane's watermark it forms a contiguous suffix of the feeder's stream —
/// every unacknowledged id above some floor is present.
#[derive(Clone, Debug, Default)]
pub struct BatchFrame {
    /// The sending feeder lane.
    pub partition: PartitionId,
    /// Operation ids, strictly ascending.
    pub ids: Vec<Timestamp>,
    /// Optional idle heartbeat (Alg. 2 l. 10–12), `>=` every id in `ids`.
    pub heartbeat: Option<Timestamp>,
}

struct Lane {
    /// Highest id accepted from this feeder (its `PartitionTime`).
    watermark: Timestamp,
    /// Accepted, not-yet-stable ids in timestamp order.
    pending: VecDeque<Timestamp>,
}

/// One replica of the sharded Eunomia service.
///
/// Semantically equivalent to [`ReplicaState`] over id-only payloads: same
/// ack values, same stable times, same leader/follower split. The
/// difference is purely mechanical — per-lane watermark dedup and ring
/// buffers instead of a global ordered map.
///
/// [`ReplicaState`]: crate::replica::ReplicaState
pub struct ShardedReplicaState {
    id: ReplicaId,
    leader: ReplicaId,
    lanes: Vec<Lane>,
    /// Min over lane watermarks = the stable cutoff.
    cutoffs: TournamentTree<Timestamp>,
    last_stable: Timestamp,
    pending: usize,
    total_accepted: u64,
    total_duplicates: u64,
}

impl ShardedReplicaState {
    /// Creates replica `id` with one lane per feeder partition; replica 0
    /// starts as leader by convention.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes` is zero.
    pub fn new(id: ReplicaId, n_lanes: usize) -> Self {
        assert!(n_lanes > 0, "Eunomia needs at least one feeder lane");
        ShardedReplicaState {
            id,
            leader: ReplicaId(0),
            lanes: (0..n_lanes)
                .map(|_| Lane {
                    watermark: Timestamp::ZERO,
                    pending: VecDeque::new(),
                })
                .collect(),
            cutoffs: TournamentTree::new(n_lanes, Timestamp::ZERO, Timestamp::MAX),
            last_stable: Timestamp::ZERO,
            pending: 0,
            total_accepted: 0,
            total_duplicates: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Ingests a frame (the sharded `NEW_BATCH` + `HEARTBEAT`): slices off
    /// the already-seen prefix, appends the rest to the lane, advances the
    /// watermark, and returns the ack — the lane's new watermark.
    pub fn ingest(&mut self, frame: &BatchFrame) -> Result<Timestamp, EunomiaError> {
        let idx = frame.partition.index();
        let lane = self
            .lanes
            .get_mut(idx)
            .ok_or(EunomiaError::UnknownPartition(frame.partition))?;
        debug_assert!(
            frame.ids.windows(2).all(|w| w[0] < w[1]),
            "frame ids must be strictly ascending"
        );
        // At-least-once dedup in one binary search: everything at or below
        // the watermark was delivered before.
        let fresh_from = frame.ids.partition_point(|&ts| ts <= lane.watermark);
        let fresh = &frame.ids[fresh_from..];
        self.total_duplicates += fresh_from as u64;
        self.total_accepted += fresh.len() as u64;
        self.pending += fresh.len();
        lane.pending.extend(fresh.iter().copied());
        if let Some(&last) = fresh.last() {
            lane.watermark = last;
        }
        if let Some(hb) = frame.heartbeat {
            debug_assert!(
                frame.ids.last().is_none_or(|&last| hb >= last),
                "heartbeat must dominate the frame's ids"
            );
            if hb > lane.watermark {
                lane.watermark = hb;
            }
        }
        self.cutoffs.update(idx, lane.watermark);
        Ok(lane.watermark)
    }

    /// `NEW_LEADER`.
    pub fn set_leader(&mut self, leader: ReplicaId) {
        self.leader = leader;
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.leader == self.id
    }

    /// Promotes this replica to leader. Stabilization resumes from
    /// `last_stable`; nothing is emitted twice and nothing is lost.
    pub fn promote(&mut self) {
        self.leader = self.id;
    }

    /// Current stable time: the minimum lane watermark, `O(1)`.
    pub fn stable_time(&self) -> Timestamp {
        *self.cutoffs.min()
    }

    /// Leader-side `PROCESS_STABLE`: drains every id at or below the
    /// stable cutoff, invoking `emit(lane, id)` per id (ids of a lane in
    /// timestamp order, lanes in index order), and returns the new stable
    /// time — or `None` if this replica is not the leader or the cutoff
    /// has not advanced.
    pub fn leader_process_stable_with(
        &mut self,
        mut emit: impl FnMut(PartitionId, Timestamp),
    ) -> Option<Timestamp> {
        if !self.is_leader() {
            return None;
        }
        let stable = self.stable_time();
        if stable <= self.last_stable {
            return None;
        }
        for (idx, lane) in self.lanes.iter_mut().enumerate() {
            while let Some(&ts) = lane.pending.front() {
                if ts > stable {
                    break;
                }
                lane.pending.pop_front();
                self.pending -= 1;
                emit(PartitionId(idx as u32), ts);
            }
        }
        self.last_stable = stable;
        Some(stable)
    }

    /// Follower-side `STABLE`: discards ids the leader already processed.
    /// Returns how many were discarded.
    pub fn apply_stable(&mut self, stable: Timestamp) -> usize {
        if stable <= self.last_stable {
            return 0;
        }
        let mut discarded = 0;
        for lane in &mut self.lanes {
            while lane.pending.front().is_some_and(|&ts| ts <= stable) {
                lane.pending.pop_front();
                discarded += 1;
            }
        }
        self.pending -= discarded;
        self.last_stable = stable;
        discarded
    }

    /// Number of buffered (accepted, unstable) ids.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Stable time most recently processed or learned.
    pub fn last_stable(&self) -> Timestamp {
        self.last_stable
    }

    /// Ids accepted (non-duplicate).
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted
    }

    /// Duplicate deliveries filtered out.
    pub fn total_duplicates(&self) -> u64 {
        self.total_duplicates
    }

    /// Watermark recorded for `partition`.
    pub fn watermark(&self, partition: PartitionId) -> Option<Timestamp> {
        self.lanes.get(partition.index()).map(|l| l.watermark)
    }
}

/// Feeder-side window of unacknowledged ids with per-replica watermark
/// acks — the id-only, flat-buffer counterpart of
/// [`crate::replica::ReplicatedSender`].
///
/// The window is a ring of strictly ascending ids. Because acks are
/// watermarks and the window is ordered, building the retransmission
/// frame for a replica is one binary search plus a bulk copy, and pruning
/// is popping a prefix.
#[derive(Clone, Debug)]
pub struct LaneSender {
    window: VecDeque<Timestamp>,
    acks: Vec<Timestamp>,
    alive: Vec<bool>,
}

impl LaneSender {
    /// Creates a sender replicating to `n_replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn new(n_replicas: usize) -> Self {
        assert!(n_replicas > 0, "need at least one replica");
        LaneSender {
            window: VecDeque::new(),
            acks: vec![Timestamp::ZERO; n_replicas],
            alive: vec![true; n_replicas],
        }
    }

    /// Appends a freshly issued id to the window.
    ///
    /// # Panics
    ///
    /// Panics (debug) unless `ts` exceeds the window's newest id — the
    /// caller's clock must be monotone (Property 2).
    pub fn push(&mut self, ts: Timestamp) {
        debug_assert!(
            self.window.back().is_none_or(|&last| ts > last),
            "pushed ids must strictly increase"
        );
        self.window.push_back(ts);
    }

    /// Appends every windowed id above `floor` to `out` in timestamp
    /// order: one binary search, then bulk copies.
    pub fn append_above(&self, floor: Timestamp, out: &mut Vec<Timestamp>) {
        let (a, b) = self.window.as_slices();
        if a.last().is_some_and(|&last| floor < last) {
            let i = a.partition_point(|&ts| ts <= floor);
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(b);
        } else {
            let j = b.partition_point(|&ts| ts <= floor);
            out.extend_from_slice(&b[j..]);
        }
    }

    /// Builds the frame for `replica` reusing `ids`'s allocation: every
    /// windowed id above `max(ack, floor)`, plus the heartbeat.
    pub fn build_frame(
        &self,
        partition: PartitionId,
        replica: ReplicaId,
        floor: Timestamp,
        heartbeat: Option<Timestamp>,
        mut ids: Vec<Timestamp>,
    ) -> BatchFrame {
        ids.clear();
        self.append_above(self.acks[replica.index()].max(floor), &mut ids);
        BatchFrame {
            partition,
            ids,
            heartbeat,
        }
    }

    /// Records a watermark ack from `replica` and prunes ids acknowledged
    /// by every live replica. Returns the number pruned.
    pub fn on_ack(&mut self, replica: ReplicaId, ts: Timestamp) -> usize {
        let slot = &mut self.acks[replica.index()];
        if ts > *slot {
            *slot = ts;
        }
        self.prune()
    }

    /// Marks a replica as crashed: its stalled ack no longer pins the
    /// window. Returns the number of ids pruned as a result.
    pub fn mark_dead(&mut self, replica: ReplicaId) -> usize {
        self.alive[replica.index()] = false;
        self.prune()
    }

    /// Marks a replica live again; it re-acks from the window's low
    /// watermark (a recovered replica rejoins by state transfer, not
    /// replay — same contract as `ReplicatedSender::mark_alive`).
    pub fn mark_alive(&mut self, replica: ReplicaId) {
        self.alive[replica.index()] = true;
        self.acks[replica.index()] = self.low_watermark();
    }

    fn low_watermark(&self) -> Timestamp {
        self.window.front().map_or_else(
            || self.acks.iter().copied().max().unwrap_or(Timestamp::ZERO),
            |&ts| Timestamp(ts.0.saturating_sub(1)),
        )
    }

    fn prune(&mut self) -> usize {
        let min_ack = self
            .acks
            .iter()
            .zip(self.alive.iter())
            .filter(|(_, alive)| **alive)
            .map(|(a, _)| *a)
            .min()
            .unwrap_or(Timestamp::MAX);
        let mut pruned = 0;
        while self.window.front().is_some_and(|&ts| ts <= min_ack) {
            self.window.pop_front();
            pruned += 1;
        }
        pruned
    }

    /// Ids waiting for acknowledgement.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Highest watermark ack recorded for `replica`.
    pub fn ack_of(&self, replica: ReplicaId) -> Timestamp {
        self.acks[replica.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    fn frame(partition: u32, ids: &[u64]) -> BatchFrame {
        BatchFrame {
            partition: p(partition),
            ids: ids.iter().map(|&t| Timestamp(t)).collect(),
            heartbeat: None,
        }
    }

    #[test]
    fn duplicate_suffix_frames_are_sliced_off() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 1);
        let ack = r.ingest(&frame(0, &[1, 2])).unwrap();
        assert_eq!(ack, Timestamp(2));
        // Redelivery of the same prefix plus one new id.
        let ack = r.ingest(&frame(0, &[1, 2, 3])).unwrap();
        assert_eq!(ack, Timestamp(3));
        assert_eq!(r.total_accepted(), 3);
        assert_eq!(r.total_duplicates(), 2);
        assert_eq!(r.pending(), 3);
    }

    #[test]
    fn heartbeat_advances_watermark_without_ids() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 2);
        r.ingest(&frame(0, &[5])).unwrap();
        assert_eq!(r.stable_time(), Timestamp::ZERO, "lane 1 never spoke");
        let hb = BatchFrame {
            partition: p(1),
            ids: Vec::new(),
            heartbeat: Some(Timestamp(9)),
        };
        assert_eq!(r.ingest(&hb).unwrap(), Timestamp(9));
        assert_eq!(r.stable_time(), Timestamp(5));
    }

    #[test]
    fn unknown_lane_is_rejected() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 2);
        assert!(matches!(
            r.ingest(&frame(5, &[1])),
            Err(EunomiaError::UnknownPartition(PartitionId(5)))
        ));
    }

    #[test]
    fn only_leader_processes_stable_and_follower_discards() {
        let mut leader = ShardedReplicaState::new(ReplicaId(0), 1);
        let mut follower = ShardedReplicaState::new(ReplicaId(1), 1);
        for r in [&mut leader, &mut follower] {
            r.set_leader(ReplicaId(0));
            r.ingest(&frame(0, &[5])).unwrap();
        }
        let mut out = Vec::new();
        assert!(follower
            .leader_process_stable_with(|_, ts| out.push(ts))
            .is_none());
        let stable = leader
            .leader_process_stable_with(|_, ts| out.push(ts))
            .unwrap();
        assert_eq!(stable, Timestamp(5));
        assert_eq!(out, vec![Timestamp(5)]);
        assert_eq!(follower.apply_stable(stable), 1);
        assert_eq!(follower.pending(), 0);
        assert_eq!(follower.apply_stable(Timestamp(4)), 0, "stale ignored");
    }

    #[test]
    fn failover_emits_no_duplicates_and_loses_nothing() {
        let ids: Vec<u64> = (1..=10).collect();
        let mut r0 = ShardedReplicaState::new(ReplicaId(0), 1);
        let mut r1 = ShardedReplicaState::new(ReplicaId(1), 1);
        for r in [&mut r0, &mut r1] {
            r.set_leader(ReplicaId(0));
            r.ingest(&frame(0, &ids[..6])).unwrap();
        }
        let mut emitted = Vec::new();
        let stable = r0
            .leader_process_stable_with(|_, ts| emitted.push(ts.0))
            .unwrap();
        r1.apply_stable(stable);
        // r0 crashes; r1 takes over with the remaining ids.
        r1.ingest(&frame(0, &ids[6..])).unwrap();
        r1.promote();
        r1.leader_process_stable_with(|_, ts| emitted.push(ts.0))
            .unwrap();
        assert_eq!(emitted, ids);
    }

    #[test]
    fn stable_cutoff_is_min_across_many_lanes() {
        let mut r = ShardedReplicaState::new(ReplicaId(0), 16);
        for lane in 0..16u32 {
            r.ingest(&frame(lane, &[100 + lane as u64])).unwrap();
        }
        assert_eq!(r.stable_time(), Timestamp(100));
        let mut n = 0;
        let stable = r.leader_process_stable_with(|_, _| n += 1).unwrap();
        assert_eq!(stable, Timestamp(100));
        assert_eq!(n, 1, "only lane 0's id is at or below the cutoff");
        assert_eq!(r.pending(), 15);
    }

    #[test]
    fn sender_builds_suffix_frames_and_prunes_on_acks() {
        let mut s = LaneSender::new(2);
        for t in 1..=5u64 {
            s.push(Timestamp(t));
        }
        let f = s.build_frame(p(0), ReplicaId(0), Timestamp::ZERO, None, Vec::new());
        assert_eq!(f.ids.len(), 5);
        s.on_ack(ReplicaId(0), Timestamp(5));
        assert_eq!(s.window_len(), 5, "replica 1 silent: window pinned");
        // Floor above the ack: only unsent ids.
        let f = s.build_frame(p(0), ReplicaId(1), Timestamp(3), None, f.ids);
        assert_eq!(f.ids, vec![Timestamp(4), Timestamp(5)]);
        s.on_ack(ReplicaId(1), Timestamp(5));
        assert_eq!(s.window_len(), 0);
    }

    #[test]
    fn dead_replica_stops_pinning_window() {
        let mut s = LaneSender::new(3);
        for t in 1..=5u64 {
            s.push(Timestamp(t));
        }
        s.on_ack(ReplicaId(0), Timestamp(5));
        s.on_ack(ReplicaId(1), Timestamp(5));
        assert_eq!(s.window_len(), 5);
        assert_eq!(s.mark_dead(ReplicaId(2)), 5);
        assert_eq!(s.window_len(), 0);
        s.mark_alive(ReplicaId(2));
        assert_eq!(s.ack_of(ReplicaId(2)), Timestamp(5));
    }

    #[test]
    fn append_above_spans_the_deque_wrap_point() {
        let mut s = LaneSender::new(1);
        // Force a wrapped deque: push, prune, push more.
        for t in 1..=8u64 {
            s.push(Timestamp(t));
        }
        s.on_ack(ReplicaId(0), Timestamp(6));
        for t in 9..=12u64 {
            s.push(Timestamp(t));
        }
        let mut out = Vec::new();
        s.append_above(Timestamp(7), &mut out);
        assert_eq!(
            out,
            (8..=12).map(Timestamp).collect::<Vec<_>>(),
            "suffix must be correct regardless of ring layout"
        );
        out.clear();
        s.append_above(Timestamp::ZERO, &mut out);
        assert_eq!(out.len(), s.window_len());
    }

    proptest! {
        /// The sharded replica agrees with the reference `ReplicaState`
        /// under lossy, duplicating, multi-replica delivery: same acks,
        /// same stable times, same accepted id sets.
        #[test]
        fn agrees_with_reference_replica_under_loss(
            n_ops in 1usize..40,
            plan in proptest::collection::vec((0usize..3, proptest::bool::ANY), 0..120),
        ) {
            use crate::replica::{ReplicaState, ReplicatedSender};
            let mut sender = LaneSender::new(3);
            let mut reference_sender: ReplicatedSender<u64> = ReplicatedSender::new(3);
            let mut sharded: Vec<ShardedReplicaState> =
                (0..3).map(|i| ShardedReplicaState::new(ReplicaId(i), 1)).collect();
            let mut reference: Vec<ReplicaState<u64>> =
                (0..3).map(|i| ReplicaState::new(ReplicaId(i), 1)).collect();
            let mut produced = 0u64;
            for (target, drop) in plan {
                if produced < n_ops as u64 {
                    produced += 1;
                    sender.push(Timestamp(produced));
                    reference_sender.push(Timestamp(produced), produced);
                }
                let rid = ReplicaId(target as u32);
                let f = sender.build_frame(p(0), rid, Timestamp::ZERO, None, Vec::new());
                let ref_batch = reference_sender.batch_for(rid);
                prop_assert_eq!(
                    f.ids.clone(),
                    ref_batch.iter().map(|(ts, _)| *ts).collect::<Vec<_>>()
                );
                if !drop && !f.ids.is_empty() {
                    let ack = sharded[target].ingest(&f).unwrap();
                    let ref_ack = reference[target].new_batch(p(0), ref_batch).unwrap();
                    prop_assert_eq!(ack, ref_ack);
                    sender.on_ack(rid, ack);
                    reference_sender.on_ack(rid, ref_ack);
                }
                for (s, r) in sharded.iter().zip(reference.iter()) {
                    prop_assert_eq!(s.stable_time(), r.stable_time());
                    prop_assert_eq!(s.pending(), r.pending());
                }
            }
        }
    }
}
