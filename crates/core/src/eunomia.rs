//! The Eunomia service state machine (Algorithm 3).
//!
//! Eunomia receives timestamped operations and heartbeats from every
//! partition of its datacenter, tracks the latest timestamp seen per
//! partition (`PartitionTime`), and periodically drains — in timestamp
//! order — every operation at or below the *stable time*, the minimum of
//! `PartitionTime`. Property 2 (per-partition FIFO with strictly
//! increasing timestamps) guarantees no operation below the stable time
//! can still arrive, so the drained sequence is a total order consistent
//! with causality (Property 1) and can be shipped to remote datacenters
//! with trivially checkable dependencies.

use crate::buffer::{OpKey, StabilizationBuffer};
use crate::ids::PartitionId;
use crate::time::Timestamp;
use eunomia_collections::{OrderedMap, RbTree};

/// Errors surfaced by the Eunomia state machine.
///
/// A correct deployment never produces these: partitions stamp strictly
/// increasing timestamps (Property 2) and links are FIFO. They exist so
/// that drivers and tests can detect wiring mistakes instead of silently
/// corrupting the stabilization order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EunomiaError {
    /// An operation or heartbeat arrived from a partition id outside the
    /// configured range.
    UnknownPartition(PartitionId),
    /// An operation arrived with a timestamp at or below the partition's
    /// recorded `PartitionTime` — a Property 2 violation.
    NonMonotonicTimestamp {
        /// Offending partition.
        partition: PartitionId,
        /// Timestamp carried by the operation.
        got: Timestamp,
        /// Latest timestamp previously recorded for that partition.
        latest: Timestamp,
    },
}

impl std::fmt::Display for EunomiaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EunomiaError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            EunomiaError::NonMonotonicTimestamp {
                partition,
                got,
                latest,
            } => write!(
                f,
                "non-monotonic timestamp from {partition}: got {got}, latest {latest}"
            ),
        }
    }
}

impl std::error::Error for EunomiaError {}

/// The (non-replicated) Eunomia service of §3.1.
///
/// Generic over the operation payload `T` and the ordered-map backend `M`
/// (default: the red-black tree of §6).
#[derive(Clone, Debug)]
pub struct EunomiaState<T, M = RbTree<OpKey, T>>
where
    M: OrderedMap<OpKey, T>,
{
    partition_time: Vec<Timestamp>,
    ops: StabilizationBuffer<T, M>,
    last_stable: Timestamp,
    total_received: u64,
    total_stabilized: u64,
}

impl<T, M: OrderedMap<OpKey, T>> EunomiaState<T, M> {
    /// Creates a service tracking `n_partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `n_partitions` is zero — the stable time would be
    /// undefined.
    pub fn new(n_partitions: usize) -> Self {
        assert!(n_partitions > 0, "Eunomia needs at least one partition");
        EunomiaState {
            partition_time: vec![Timestamp::ZERO; n_partitions],
            ops: StabilizationBuffer::new(),
            last_stable: Timestamp::ZERO,
            total_received: 0,
            total_stabilized: 0,
        }
    }

    /// Number of tracked partitions.
    pub fn partitions(&self) -> usize {
        self.partition_time.len()
    }

    /// `ADD_OP` (Alg. 3 l. 1–4): buffers an operation and advances the
    /// partition's entry in `PartitionTime`.
    pub fn add_op(
        &mut self,
        partition: PartitionId,
        ts: Timestamp,
        payload: T,
    ) -> Result<(), EunomiaError> {
        let entry = self
            .partition_time
            .get_mut(partition.index())
            .ok_or(EunomiaError::UnknownPartition(partition))?;
        if ts <= *entry {
            return Err(EunomiaError::NonMonotonicTimestamp {
                partition,
                got: ts,
                latest: *entry,
            });
        }
        *entry = ts;
        self.ops.insert(OpKey::new(ts, partition), payload);
        self.total_received += 1;
        Ok(())
    }

    /// `HEARTBEAT` (Alg. 3 l. 5–6): advances `PartitionTime` without
    /// buffering an operation. Stale heartbeats (at or below the recorded
    /// time) are ignored rather than rejected: unlike operations they carry
    /// no payload, so dropping them is harmless.
    pub fn heartbeat(&mut self, partition: PartitionId, ts: Timestamp) -> Result<(), EunomiaError> {
        let entry = self
            .partition_time
            .get_mut(partition.index())
            .ok_or(EunomiaError::UnknownPartition(partition))?;
        if ts > *entry {
            *entry = ts;
        }
        Ok(())
    }

    /// The current stable time: `MIN(PartitionTime)` (Alg. 3 l. 8).
    ///
    /// No partition will ever stamp an update at or below this value, so
    /// every buffered operation at or below it is final.
    pub fn stable_time(&self) -> Timestamp {
        self.partition_time
            .iter()
            .copied()
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// `PROCESS_STABLE` (Alg. 3 l. 7–11): drains every stable operation
    /// into `out` in timestamp order and returns the stable time used.
    pub fn process_stable(&mut self, out: &mut Vec<(OpKey, T)>) -> Timestamp {
        let stable = self.stable_time();
        if stable > self.last_stable {
            let before = out.len();
            self.ops.drain_stable(stable, out);
            self.total_stabilized += (out.len() - before) as u64;
            self.last_stable = stable;
        }
        self.last_stable
    }

    /// Latest timestamp recorded for `partition`.
    pub fn partition_time(&self, partition: PartitionId) -> Option<Timestamp> {
        self.partition_time.get(partition.index()).copied()
    }

    /// Stable time returned by the last `process_stable` call.
    pub fn last_stable(&self) -> Timestamp {
        self.last_stable
    }

    /// Number of buffered (not yet stable) operations.
    pub fn pending(&self) -> usize {
        self.ops.len()
    }

    /// Total operations ever received.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }

    /// Total operations ever drained as stable.
    pub fn total_stabilized(&self) -> u64 {
        self.total_stabilized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type Svc = EunomiaState<u64>;

    #[test]
    fn nothing_stable_until_all_partitions_report() {
        let mut s = Svc::new(3);
        s.add_op(PartitionId(0), Timestamp(10), 0).unwrap();
        s.add_op(PartitionId(1), Timestamp(20), 1).unwrap();
        // Partition 2 has never reported: stable time is ZERO.
        assert_eq!(s.stable_time(), Timestamp::ZERO);
        let mut out = Vec::new();
        s.process_stable(&mut out);
        assert!(out.is_empty());
        s.heartbeat(PartitionId(2), Timestamp(15)).unwrap();
        s.process_stable(&mut out);
        assert_eq!(out.len(), 1, "only the op at ts 10 <= stable 10 is out");
    }

    #[test]
    fn drains_in_causal_timestamp_order() {
        let mut s = Svc::new(2);
        s.add_op(PartitionId(0), Timestamp(5), 5).unwrap();
        s.add_op(PartitionId(1), Timestamp(3), 3).unwrap();
        s.add_op(PartitionId(0), Timestamp(8), 8).unwrap();
        s.add_op(PartitionId(1), Timestamp(7), 7).unwrap();
        let mut out = Vec::new();
        s.process_stable(&mut out);
        // stable = min(8, 7) = 7 -> ops 3, 5, 7 in order.
        assert_eq!(
            out.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn property2_violation_is_rejected() {
        let mut s = Svc::new(1);
        s.add_op(PartitionId(0), Timestamp(10), 0).unwrap();
        let err = s.add_op(PartitionId(0), Timestamp(10), 1).unwrap_err();
        assert!(matches!(err, EunomiaError::NonMonotonicTimestamp { .. }));
        let err = s.add_op(PartitionId(0), Timestamp(9), 1).unwrap_err();
        assert!(matches!(err, EunomiaError::NonMonotonicTimestamp { .. }));
    }

    #[test]
    fn unknown_partition_is_rejected() {
        let mut s = Svc::new(2);
        assert_eq!(
            s.add_op(PartitionId(5), Timestamp(1), 0),
            Err(EunomiaError::UnknownPartition(PartitionId(5)))
        );
        assert_eq!(
            s.heartbeat(PartitionId(2), Timestamp(1)),
            Err(EunomiaError::UnknownPartition(PartitionId(2)))
        );
    }

    #[test]
    fn stale_heartbeats_are_ignored() {
        let mut s = Svc::new(1);
        s.add_op(PartitionId(0), Timestamp(10), 0).unwrap();
        s.heartbeat(PartitionId(0), Timestamp(5)).unwrap();
        assert_eq!(s.partition_time(PartitionId(0)), Some(Timestamp(10)));
    }

    #[test]
    fn slow_partition_does_not_block_others_with_heartbeats() {
        let mut s = Svc::new(2);
        for t in 1..=100u64 {
            s.add_op(PartitionId(0), Timestamp(t), t).unwrap();
        }
        // Partition 1 is idle but heartbeats (Alg. 2 l. 10-12).
        s.heartbeat(PartitionId(1), Timestamp(100)).unwrap();
        let mut out = Vec::new();
        s.process_stable(&mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn counters_track_flow() {
        let mut s = Svc::new(1);
        s.add_op(PartitionId(0), Timestamp(1), 1).unwrap();
        s.add_op(PartitionId(0), Timestamp(2), 2).unwrap();
        let mut out = Vec::new();
        s.process_stable(&mut out);
        assert_eq!(s.total_received(), 2);
        assert_eq!(s.total_stabilized(), 2);
        assert_eq!(s.last_stable(), Timestamp(2));
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = Svc::new(0);
    }

    proptest! {
        /// For any interleaving of per-partition monotone streams, the
        /// stabilized output is (a) totally ordered by (ts, partition),
        /// (b) a prefix: nothing later emerges below an emitted timestamp,
        /// and (c) complete up to the final stable time.
        #[test]
        fn stabilized_output_is_an_order_consistent_prefix(
            // Per-partition number of ops and per-op timestamp gaps.
            gaps in proptest::collection::vec(
                proptest::collection::vec(1u64..5, 0..30), 2..5
            ),
            // Interleaving seed.
            seed in 0u64..u64::MAX,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let n = gaps.len();
            let mut streams: Vec<Vec<Timestamp>> = gaps
                .iter()
                .map(|g| {
                    let mut acc = 0u64;
                    g.iter().map(|d| { acc += d; Timestamp(acc) }).collect()
                })
                .collect();
            let mut svc: EunomiaState<Timestamp> = EunomiaState::new(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut emitted: Vec<OpKey> = Vec::new();
            let mut cursors = vec![0usize; n];
            let total: usize = streams.iter().map(|s| s.len()).sum();
            let mut sent = 0usize;
            while sent < total {
                let p = rng.random_range(0..n);
                if cursors[p] < streams[p].len() {
                    let ts = streams[p][cursors[p]];
                    cursors[p] += 1;
                    sent += 1;
                    svc.add_op(PartitionId(p as u32), ts, ts).unwrap();
                }
                if rng.random_range(0..4) == 0 {
                    let mut out = Vec::new();
                    svc.process_stable(&mut out);
                    emitted.extend(out.iter().map(|(k, _)| *k));
                }
            }
            // Final heartbeat from everyone so everything stabilizes.
            let horizon = Timestamp(1_000_000);
            for p in 0..n {
                svc.heartbeat(PartitionId(p as u32), horizon).unwrap();
            }
            let mut out = Vec::new();
            svc.process_stable(&mut out);
            emitted.extend(out.iter().map(|(k, _)| *k));

            // (a) total order.
            for w in emitted.windows(2) {
                prop_assert!(w[0] < w[1], "emitted keys must strictly increase");
            }
            // (c) completeness.
            prop_assert_eq!(emitted.len(), total);
            let mut expected: Vec<OpKey> = streams
                .iter_mut()
                .enumerate()
                .flat_map(|(p, s)| {
                    s.drain(..).map(move |ts| OpKey::new(ts, PartitionId(p as u32)))
                })
                .collect();
            expected.sort();
            prop_assert_eq!(emitted, expected);
        }
    }
}
