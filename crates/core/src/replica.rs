//! Fault-tolerant Eunomia (§3.3, Algorithm 4).
//!
//! The service becomes a set of replicas. Partitions send every operation
//! to *all* replicas; correctness only needs the **prefix property**: a
//! replica holding an update from partition `p` also holds every earlier
//! update from `p`. That is achieved without exactly-once or
//! inter-partition ordering by a cheap at-least-once scheme — each
//! partition keeps, per replica, the highest acknowledged timestamp
//! (`Ack_n[f]`) and re-sends everything above it ([`ReplicatedSender`]).
//! Replicas filter duplicates by timestamp ([`ReplicaState::new_batch`]).
//!
//! A leader (elected by any asynchronous leader elector, see
//! [`crate::election`]) runs `PROCESS_STABLE` and broadcasts the stable
//! time so followers can discard the operations the leader already
//! processed. The leader is an optimization: replicas never need to
//! coordinate, because the stable time is a deterministic function of
//! inputs whose order does not matter.

use crate::buffer::{OpKey, StabilizationBuffer};
use crate::eunomia::EunomiaError;
use crate::ids::{PartitionId, ReplicaId};
use crate::time::Timestamp;
use eunomia_collections::{OrderedMap, RbTree};
use std::collections::VecDeque;

/// One replica of the fault-tolerant Eunomia service (Algorithm 4).
#[derive(Clone, Debug)]
pub struct ReplicaState<T, M = RbTree<OpKey, T>>
where
    M: OrderedMap<OpKey, T>,
{
    id: ReplicaId,
    partition_time: Vec<Timestamp>,
    ops: StabilizationBuffer<T, M>,
    leader: ReplicaId,
    last_stable: Timestamp,
    total_accepted: u64,
    total_duplicates: u64,
}

impl<T, M: OrderedMap<OpKey, T>> ReplicaState<T, M> {
    /// Creates replica `id` tracking `n_partitions` partitions; replica 0
    /// starts as leader by convention.
    ///
    /// # Panics
    ///
    /// Panics if `n_partitions` is zero.
    pub fn new(id: ReplicaId, n_partitions: usize) -> Self {
        assert!(n_partitions > 0, "Eunomia needs at least one partition");
        ReplicaState {
            id,
            partition_time: vec![Timestamp::ZERO; n_partitions],
            ops: StabilizationBuffer::new(),
            leader: ReplicaId(0),
            last_stable: Timestamp::ZERO,
            total_accepted: 0,
            total_duplicates: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// `NEW_BATCH` (Alg. 4 l. 1–5): ingests an at-least-once batch from
    /// `partition`, filtering already-seen updates, and returns the ack —
    /// the highest timestamp now recorded for that partition.
    ///
    /// The batch must be internally ordered by ascending timestamp (the
    /// sender iterates its window in order); this is debug-asserted.
    pub fn new_batch(
        &mut self,
        partition: PartitionId,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<Timestamp, EunomiaError> {
        let idx = partition.index();
        if idx >= self.partition_time.len() {
            return Err(EunomiaError::UnknownPartition(partition));
        }
        let mut prev = Timestamp::ZERO;
        for (ts, payload) in batch {
            debug_assert!(ts > prev, "batches must be timestamp-ordered");
            prev = ts;
            if ts > self.partition_time[idx] {
                self.partition_time[idx] = ts;
                self.ops.insert(OpKey::new(ts, partition), payload);
                self.total_accepted += 1;
            } else {
                self.total_duplicates += 1;
            }
        }
        Ok(self.partition_time[idx])
    }

    /// Heartbeat from a partition (same contract as the non-replicated
    /// service); returns the ack timestamp.
    pub fn heartbeat(
        &mut self,
        partition: PartitionId,
        ts: Timestamp,
    ) -> Result<Timestamp, EunomiaError> {
        let entry = self
            .partition_time
            .get_mut(partition.index())
            .ok_or(EunomiaError::UnknownPartition(partition))?;
        if ts > *entry {
            *entry = ts;
        }
        Ok(*entry)
    }

    /// `NEW_LEADER` (Alg. 4 l. 16–17).
    pub fn set_leader(&mut self, leader: ReplicaId) {
        self.leader = leader;
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.leader == self.id
    }

    /// Current stable time (min of `PartitionTime`).
    pub fn stable_time(&self) -> Timestamp {
        self.partition_time
            .iter()
            .copied()
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Leader-side `PROCESS_STABLE` (Alg. 4 l. 6–12): drains stable
    /// operations into `out` and returns the stable time to broadcast to
    /// the other replicas, or `None` if this replica is not the leader or
    /// the stable time has not advanced.
    pub fn leader_process_stable(&mut self, out: &mut Vec<(OpKey, T)>) -> Option<Timestamp> {
        if !self.is_leader() {
            return None;
        }
        let stable = self.stable_time();
        if stable <= self.last_stable {
            return None;
        }
        self.ops.drain_stable(stable, out);
        self.last_stable = stable;
        Some(stable)
    }

    /// Follower-side `STABLE` (Alg. 4 l. 13–15): discards operations the
    /// leader already processed. Returns how many were discarded.
    pub fn apply_stable(&mut self, stable: Timestamp) -> usize {
        if stable <= self.last_stable {
            return 0;
        }
        self.last_stable = stable;
        self.ops.discard_stable(stable)
    }

    /// Promotes this replica to leader, e.g. after the elector's choice
    /// changed. Stabilization resumes from `last_stable`, so no operation
    /// is emitted twice and none is lost (the buffer still holds everything
    /// above the last broadcast stable time).
    pub fn promote(&mut self) {
        self.leader = self.id;
    }

    /// Number of buffered operations.
    pub fn pending(&self) -> usize {
        self.ops.len()
    }

    /// Stable time most recently processed or learned.
    pub fn last_stable(&self) -> Timestamp {
        self.last_stable
    }

    /// Operations accepted (non-duplicate).
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted
    }

    /// Duplicate deliveries filtered out.
    pub fn total_duplicates(&self) -> u64 {
        self.total_duplicates
    }

    /// Latest timestamp recorded for `partition`.
    pub fn partition_time(&self, partition: PartitionId) -> Option<Timestamp> {
        self.partition_time.get(partition.index()).copied()
    }
}

impl<T: std::hash::Hash, M: OrderedMap<OpKey, T>> ReplicaState<T, M> {
    /// Folds this replica's protocol state into `h` for model-checking
    /// state hashing: partition times, the buffered op set (visited in
    /// key order — already canonical), leadership and the stable
    /// watermark, plus the accepted/duplicate counters (the duplicate
    /// filter's behaviour depends on them only through `partition_time`,
    /// but they distinguish histories under injected redelivery).
    pub fn state_digest(&self, mut h: &mut dyn std::hash::Hasher) {
        use std::hash::Hash as _;
        h.write_u32(self.id.0);
        for ts in &self.partition_time {
            h.write_u64(ts.0);
        }
        self.ops.for_each(|k, v| (k, v).hash(&mut h));
        h.write_u32(self.leader.0);
        h.write_u64(self.last_stable.0);
        h.write_u64(self.total_accepted);
        h.write_u64(self.total_duplicates);
    }
}

/// Partition-side sender that maintains the prefix property (§3.3).
///
/// Keeps a window of operations not yet acknowledged by every *live*
/// replica. `batch_for(f)` returns everything above `Ack_n[f]`, so a
/// replica that lost messages receives them again; duplicates are filtered
/// at the replica by timestamp.
#[derive(Clone, Debug)]
pub struct ReplicatedSender<T: Clone> {
    window: VecDeque<(Timestamp, T)>,
    acks: Vec<Timestamp>,
    alive: Vec<bool>,
}

impl<T: Clone> ReplicatedSender<T> {
    /// Creates a sender for `n_replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn new(n_replicas: usize) -> Self {
        assert!(n_replicas > 0, "need at least one replica");
        ReplicatedSender {
            window: VecDeque::new(),
            acks: vec![Timestamp::ZERO; n_replicas],
            alive: vec![true; n_replicas],
        }
    }

    /// Appends a freshly timestamped operation to the window.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `ts` does not exceed the window's newest
    /// timestamp: the caller's clock must be monotone (Property 2).
    pub fn push(&mut self, ts: Timestamp, payload: T) {
        debug_assert!(
            self.window.back().is_none_or(|(last, _)| ts > *last),
            "pushed timestamps must strictly increase"
        );
        self.window.push_back((ts, payload));
    }

    /// Builds the batch for replica `f`: every windowed operation above
    /// `Ack_n[f]`, in timestamp order.
    pub fn batch_for(&self, replica: ReplicaId) -> Vec<(Timestamp, T)> {
        let ack = self.acks[replica.index()];
        self.batch_above(ack)
    }

    /// Every windowed operation above `floor`, in timestamp order.
    ///
    /// Lets a sender that tracks what it already transmitted send each
    /// operation once and fall back to `batch_for` (resend from the ack)
    /// only on a retransmission timeout — the prefix property holds
    /// either way, because replicas deduplicate by timestamp.
    pub fn batch_above(&self, floor: Timestamp) -> Vec<(Timestamp, T)> {
        self.window
            .iter()
            .filter(|(ts, _)| *ts > floor)
            .cloned()
            .collect()
    }

    /// Records an ack from replica `f` and prunes the window of entries
    /// acknowledged by all live replicas. Returns the number pruned.
    pub fn on_ack(&mut self, replica: ReplicaId, ts: Timestamp) -> usize {
        let slot = &mut self.acks[replica.index()];
        if ts > *slot {
            *slot = ts;
        }
        self.prune()
    }

    /// Marks a replica as crashed: its stalled ack no longer pins the
    /// window. Returns the number of entries pruned as a result.
    pub fn mark_dead(&mut self, replica: ReplicaId) -> usize {
        self.alive[replica.index()] = false;
        self.prune()
    }

    /// Marks a replica as live again (it must re-ack from scratch; the
    /// window can no longer guarantee arbitrarily old history, which
    /// matches the paper's model where a recovered replica rejoins by
    /// state transfer, not by replay).
    pub fn mark_alive(&mut self, replica: ReplicaId) {
        self.alive[replica.index()] = true;
        self.acks[replica.index()] = self.low_watermark();
    }

    fn low_watermark(&self) -> Timestamp {
        self.window.front().map_or_else(
            || self.acks.iter().copied().max().unwrap_or(Timestamp::ZERO),
            |(ts, _)| Timestamp(ts.0.saturating_sub(1)),
        )
    }

    fn prune(&mut self) -> usize {
        let min_ack = self
            .acks
            .iter()
            .zip(self.alive.iter())
            .filter(|(_, alive)| **alive)
            .map(|(a, _)| *a)
            .min()
            .unwrap_or(Timestamp::MAX);
        let mut pruned = 0;
        while self.window.front().is_some_and(|(ts, _)| *ts <= min_ack) {
            self.window.pop_front();
            pruned += 1;
        }
        pruned
    }

    /// Operations waiting for acknowledgement.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Highest ack recorded for `replica`.
    pub fn ack_of(&self, replica: ReplicaId) -> Timestamp {
        self.acks[replica.index()]
    }
}

impl<T: Clone + std::hash::Hash> ReplicatedSender<T> {
    /// Folds the sender's window, acks and liveness view into `h` for
    /// model-checking state hashing (the window iterates in timestamp
    /// order — already canonical).
    pub fn state_digest(&self, mut h: &mut dyn std::hash::Hasher) {
        use std::hash::Hash as _;
        h.write_usize(self.window.len());
        for entry in &self.window {
            entry.hash(&mut h);
        }
        for ack in &self.acks {
            h.write_u64(ack.0);
        }
        for alive in &self.alive {
            h.write_u8(*alive as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type Replica = ReplicaState<u64>;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    #[test]
    fn duplicate_batches_are_filtered() {
        let mut r = Replica::new(ReplicaId(0), 1);
        let ack = r
            .new_batch(p(0), vec![(Timestamp(1), 1), (Timestamp(2), 2)])
            .unwrap();
        assert_eq!(ack, Timestamp(2));
        // Redelivery of the same prefix plus one new op.
        let ack = r
            .new_batch(
                p(0),
                vec![(Timestamp(1), 1), (Timestamp(2), 2), (Timestamp(3), 3)],
            )
            .unwrap();
        assert_eq!(ack, Timestamp(3));
        assert_eq!(r.total_accepted(), 3);
        assert_eq!(r.total_duplicates(), 2);
        assert_eq!(r.pending(), 3);
    }

    #[test]
    fn only_leader_processes_stable() {
        let mut leader = Replica::new(ReplicaId(0), 1);
        let mut follower = Replica::new(ReplicaId(1), 1);
        for r in [&mut leader, &mut follower] {
            r.set_leader(ReplicaId(0));
            r.new_batch(p(0), vec![(Timestamp(5), 5)]).unwrap();
        }
        let mut out = Vec::new();
        assert!(follower.leader_process_stable(&mut out).is_none());
        let stable = leader.leader_process_stable(&mut out).unwrap();
        assert_eq!(stable, Timestamp(5));
        assert_eq!(out.len(), 1);
        // Follower learns the stable time and discards.
        assert_eq!(follower.apply_stable(stable), 1);
        assert_eq!(follower.pending(), 0);
    }

    #[test]
    fn failover_emits_no_duplicates_and_loses_nothing() {
        let ops: Vec<(Timestamp, u64)> = (1..=10u64).map(|t| (Timestamp(t), t)).collect();
        let mut r0 = Replica::new(ReplicaId(0), 1);
        let mut r1 = Replica::new(ReplicaId(1), 1);
        for r in [&mut r0, &mut r1] {
            r.set_leader(ReplicaId(0));
            r.new_batch(p(0), ops[..6].to_vec()).unwrap();
        }
        let mut emitted = Vec::new();
        let stable = r0.leader_process_stable(&mut emitted).unwrap();
        r1.apply_stable(stable);
        // r0 crashes; r1 takes over with the remaining ops.
        r1.new_batch(p(0), ops[6..].to_vec()).unwrap();
        r1.promote();
        let mut out = Vec::new();
        r1.leader_process_stable(&mut out).unwrap();
        emitted.extend(out);
        let values: Vec<u64> = emitted.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn stable_does_not_regress_on_follower() {
        let mut r = Replica::new(ReplicaId(1), 1);
        r.new_batch(p(0), vec![(Timestamp(5), 5)]).unwrap();
        assert_eq!(r.apply_stable(Timestamp(5)), 1);
        assert_eq!(r.apply_stable(Timestamp(4)), 0, "stale stable ignored");
        assert_eq!(r.apply_stable(Timestamp(5)), 0, "repeat stable ignored");
    }

    #[test]
    fn sender_resends_until_acked() {
        let mut s: ReplicatedSender<u64> = ReplicatedSender::new(2);
        s.push(Timestamp(1), 1);
        s.push(Timestamp(2), 2);
        assert_eq!(s.batch_for(ReplicaId(0)).len(), 2);
        s.on_ack(ReplicaId(0), Timestamp(2));
        // Replica 1 has not acked: the window stays.
        assert_eq!(s.window_len(), 2);
        assert_eq!(s.batch_for(ReplicaId(0)).len(), 0);
        assert_eq!(s.batch_for(ReplicaId(1)).len(), 2);
        s.on_ack(ReplicaId(1), Timestamp(2));
        assert_eq!(s.window_len(), 0);
    }

    #[test]
    fn dead_replica_stops_pinning_window() {
        let mut s: ReplicatedSender<u64> = ReplicatedSender::new(3);
        for t in 1..=5u64 {
            s.push(Timestamp(t), t);
        }
        s.on_ack(ReplicaId(0), Timestamp(5));
        s.on_ack(ReplicaId(1), Timestamp(5));
        assert_eq!(s.window_len(), 5, "replica 2 silent: window pinned");
        let pruned = s.mark_dead(ReplicaId(2));
        assert_eq!(pruned, 5);
        assert_eq!(s.window_len(), 0);
    }

    proptest! {
        /// Prefix property under lossy, duplicating delivery: however
        /// batches are dropped or replayed, each replica's accepted stream
        /// per partition is a gap-free prefix-extension (it holds every op
        /// below its PartitionTime), and after a final full resend all
        /// replicas converge to the identical op set.
        #[test]
        fn prefix_property_under_loss_and_duplication(
            n_ops in 1usize..40,
            plan in proptest::collection::vec((0usize..3, proptest::bool::ANY), 0..120),
        ) {
            let mut sender: ReplicatedSender<u64> = ReplicatedSender::new(3);
            let mut replicas: Vec<ReplicaState<u64>> =
                (0..3).map(|i| ReplicaState::new(ReplicaId(i as u32), 1)).collect();
            let mut produced = 0usize;
            for (target, drop) in plan {
                if produced < n_ops {
                    produced += 1;
                    sender.push(Timestamp(produced as u64), produced as u64);
                }
                let batch = sender.batch_for(ReplicaId(target as u32));
                if !drop && !batch.is_empty() {
                    let ack = replicas[target].new_batch(p(0), batch).unwrap();
                    sender.on_ack(ReplicaId(target as u32), ack);
                }
                // Invariant: every replica's PartitionTime equals the count
                // of ops it holds (timestamps are 1..=k, gap-free prefix).
                for r in &replicas {
                    let pt = r.partition_time(p(0)).unwrap().0;
                    prop_assert_eq!(r.pending() as u64, pt, "prefix property violated");
                }
            }
            while produced < n_ops {
                produced += 1;
                sender.push(Timestamp(produced as u64), produced as u64);
            }
            // Final full resend to everyone.
            for i in 0..3u32 {
                let batch = sender.batch_for(ReplicaId(i));
                if !batch.is_empty() {
                    let ack = replicas[i as usize].new_batch(p(0), batch).unwrap();
                    sender.on_ack(ReplicaId(i), ack);
                }
            }
            for r in &replicas {
                prop_assert_eq!(r.pending(), n_ops);
            }
            prop_assert_eq!(sender.window_len(), 0);
        }
    }
}
