//! The stabilization buffer: Eunomia's ordered set of unstable operations.
//!
//! Every update received from a partition is inserted keyed by
//! `(timestamp, partition)`; `PROCESS_STABLE` drains — in timestamp order —
//! everything at or below the stable time. The backing store is pluggable
//! through [`eunomia_collections::OrderedMap`]; the default is the
//! red-black tree the paper's prototype uses (§6).

use crate::ids::PartitionId;
use crate::time::Timestamp;
use eunomia_collections::{OrderedMap, RbTree};

/// Buffer key: timestamp first, partition as tie-breaker.
///
/// Property 2 guarantees a single partition never reuses a timestamp, so
/// `(ts, partition)` uniquely identifies an operation. Operations from
/// *different* partitions may share a timestamp — they are concurrent and
/// the paper allows processing them in any order; ordering by partition id
/// makes that order deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpKey {
    /// Update timestamp (the local entry of its vector time).
    pub ts: Timestamp,
    /// Originating partition.
    pub partition: PartitionId,
}

impl OpKey {
    /// Convenience constructor.
    pub fn new(ts: Timestamp, partition: PartitionId) -> Self {
        OpKey { ts, partition }
    }
}

/// An ordered buffer of unstable operations with payloads of type `T`.
///
/// `M` is the ordered-map backend (defaults to the paper's red-black tree).
#[derive(Clone, Debug)]
pub struct StabilizationBuffer<T, M = RbTree<OpKey, T>>
where
    M: OrderedMap<OpKey, T>,
{
    ops: M,
    _payload: std::marker::PhantomData<T>,
}

impl<T, M: OrderedMap<OpKey, T>> Default for StabilizationBuffer<T, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, M: OrderedMap<OpKey, T>> StabilizationBuffer<T, M> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        StabilizationBuffer {
            ops: M::new(),
            _payload: std::marker::PhantomData,
        }
    }

    /// Inserts an operation. Returns the displaced payload if the exact
    /// `(ts, partition)` key was already present (a duplicate delivery).
    pub fn insert(&mut self, key: OpKey, payload: T) -> Option<T> {
        self.ops.insert(key, payload)
    }

    /// Number of buffered (unstable) operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Smallest buffered key, if any.
    pub fn min_key(&self) -> Option<OpKey> {
        self.ops.min_key().copied()
    }

    /// Drains every operation with `ts <= stable_time` into `out`, in
    /// `(ts, partition)` order — `FIND_STABLE` plus removal (Alg. 3 l. 9–11).
    pub fn drain_stable(&mut self, stable_time: Timestamp, out: &mut Vec<(OpKey, T)>) {
        // All partitions are >= PartitionId(0), so the max partition id acts
        // as an inclusive upper fence at `stable_time`.
        let bound = OpKey {
            ts: stable_time,
            partition: PartitionId(u32::MAX),
        };
        self.ops.drain_up_to(&bound, out);
    }

    /// Drops (without yielding) every operation with `ts <= stable_time`;
    /// used by follower replicas that learn a stable time from the leader
    /// (Alg. 4 l. 13–15).
    pub fn discard_stable(&mut self, stable_time: Timestamp) -> usize {
        let mut scratch = Vec::new();
        self.drain_stable(stable_time, &mut scratch);
        scratch.len()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Visits all buffered operations in order (diagnostics/tests).
    pub fn for_each<F: FnMut(&OpKey, &T)>(&self, f: F) {
        self.ops.for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(ts: u64, p: u32) -> OpKey {
        OpKey::new(Timestamp(ts), PartitionId(p))
    }

    #[test]
    fn drains_in_timestamp_order() {
        let mut buf: StabilizationBuffer<u32> = StabilizationBuffer::new();
        buf.insert(key(30, 0), 3);
        buf.insert(key(10, 1), 1);
        buf.insert(key(20, 0), 2);
        let mut out = Vec::new();
        buf.drain_stable(Timestamp(25), &mut out);
        assert_eq!(out.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn equal_timestamps_from_different_partitions_both_drain() {
        let mut buf: StabilizationBuffer<&str> = StabilizationBuffer::new();
        buf.insert(key(10, 2), "b");
        buf.insert(key(10, 1), "a");
        let mut out = Vec::new();
        buf.drain_stable(Timestamp(10), &mut out);
        // Concurrent updates: deterministic partition-id order.
        assert_eq!(
            out.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn bound_is_inclusive() {
        let mut buf: StabilizationBuffer<()> = StabilizationBuffer::new();
        buf.insert(key(10, 0), ());
        buf.insert(key(11, 0), ());
        let mut out = Vec::new();
        buf.drain_stable(Timestamp(10), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.ts, Timestamp(10));
    }

    #[test]
    fn duplicate_insert_reports_displacement() {
        let mut buf: StabilizationBuffer<u8> = StabilizationBuffer::new();
        assert_eq!(buf.insert(key(5, 0), 1), None);
        assert_eq!(buf.insert(key(5, 0), 2), Some(1));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn discard_stable_counts() {
        let mut buf: StabilizationBuffer<()> = StabilizationBuffer::new();
        for t in 1..=10u64 {
            buf.insert(key(t, 0), ());
        }
        assert_eq!(buf.discard_stable(Timestamp(4)), 4);
        assert_eq!(buf.len(), 6);
    }

    proptest! {
        /// Whatever mix of inserts arrives, draining yields a sorted prefix
        /// and leaves a suffix strictly above the stable time.
        #[test]
        fn drain_is_sorted_prefix(
            entries in proptest::collection::vec((1u64..1000, 0u32..8), 1..200),
            stable in 1u64..1000,
        ) {
            let mut buf: StabilizationBuffer<u64> = StabilizationBuffer::new();
            let mut unique = std::collections::BTreeMap::new();
            for (ts, p) in entries {
                buf.insert(key(ts, p), ts);
                unique.insert((ts, p), ts);
            }
            let mut out = Vec::new();
            buf.drain_stable(Timestamp(stable), &mut out);
            // Sorted by (ts, partition).
            for w in out.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            // Exactly the entries at or below the bound.
            let expected = unique.keys().filter(|(ts, _)| *ts <= stable).count();
            prop_assert_eq!(out.len(), expected);
            buf.for_each(|k, _| assert!(k.ts > Timestamp(stable)));
        }
    }
}
