//! Sequencer-based baselines: S-Seq and A-Seq (§2, §7.1).
//!
//! **S-Seq** mimics SwiftCloud/ChainReaction: every update synchronously
//! obtains the next per-datacenter sequence number *before* replying to
//! the client, so the sequencer sits in the critical path — trivial
//! dependency checking at remote datacenters (apply the `s`-th update of
//! `k` once the `s-1`-th is in and its cross-DC dependencies are covered)
//! at the price of intra-datacenter concurrency.
//!
//! **A-Seq** is the paper's deliberately *bogus* variant: it performs the
//! same total work but contacts the sequencer in parallel with applying
//! the update, replying to the client immediately. It fails to capture
//! causality; it exists to isolate how much of S-Seq's penalty is the
//! synchronous round trip (§2, Fig. 1).

use crate::msg::BMsg;
use eunomia_core::ids::DcId;
use eunomia_core::sequencer::Sequencer;
use eunomia_core::time::{Timestamp, VectorTime};
use eunomia_geo::config::ClusterConfig;
use eunomia_geo::harness::{make_report, RunReport};
use eunomia_geo::metrics::GeoMetrics;
use eunomia_geo::open_loop::{Admission, OpenLoopDriver, TIMER_ARRIVAL};
use eunomia_geo::registry::{self, SharedRegistry};
use eunomia_kv::store::{StoredVersion, VersionedStore};
use eunomia_kv::{ring, Key, Update, Value};
use eunomia_sim::{Context, Process, ProcessId, SimTime, Simulation};
use eunomia_workload::{Op, OpGenerator};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

const TIMER_RHO: u64 = 20;

/// Synchronous (S-Seq) or asynchronous/bogus (A-Seq) sequencer use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqMode {
    /// Sequencer round trip inside the update critical path.
    Synchronous,
    /// Sequencer contacted in parallel; client reply does not wait.
    Asynchronous,
}

impl SeqMode {
    fn label(self) -> &'static str {
        match self {
            SeqMode::Synchronous => "S-Seq",
            SeqMode::Asynchronous => "A-Seq",
        }
    }
}

struct PendingSeq {
    client: ProcessId,
    key: Key,
    value: Value,
    deps: VectorTime,
}

/// Partition actor for the sequencer systems.
pub struct SeqPartitionProc {
    mode: SeqMode,
    dc: usize,
    pidx: usize,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    store: VersionedStore,
    /// Updates awaiting their sequence number, in request order (the
    /// sequencer link is FIFO, so replies match front to back).
    pending: VecDeque<PendingSeq>,
    /// Provisional per-partition version counter for A-Seq local writes.
    provisional: u64,
}

impl SeqPartitionProc {
    fn new(
        mode: SeqMode,
        dc: usize,
        pidx: usize,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        SeqPartitionProc {
            mode,
            dc,
            pidx,
            cfg,
            reg,
            metrics,
            store: VersionedStore::new(),
            pending: VecDeque::new(),
            provisional: 0,
        }
    }

    fn vec_cost(&self) -> u64 {
        self.cfg.costs.vector_entry_ns * self.cfg.n_dcs as u64
    }

    fn ship(&self, ctx: &mut Context<'_, BMsg>, update: Update) {
        let reg = self.reg.borrow();
        for k in 0..self.cfg.n_dcs {
            if k != self.dc {
                ctx.send(
                    reg.seq_receiver(k),
                    BMsg::SeqShip {
                        update: update.clone(),
                    },
                );
            }
        }
    }
}

impl Process<BMsg> for SeqPartitionProc {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, from: ProcessId, msg: BMsg) {
        let costs = self.cfg.costs;
        match msg {
            BMsg::Read { key } => {
                ctx.consume(costs.read_ns + self.vec_cost());
                self.metrics.record_read(self.dc, key.0, ctx.now());
                let (value, vts) = match self.store.get(key) {
                    Some(v) => (v.value.clone(), v.vts.clone()),
                    None => (Value::new(), VectorTime::new(self.cfg.n_dcs)),
                };
                ctx.send(from, BMsg::ReadReply { value, vts });
            }
            BMsg::Update { key, value, deps } => {
                ctx.consume(costs.update_ns + self.vec_cost());
                let sequencer = self.reg.borrow().sequencer(self.dc);
                // Straggler injection (§7.2.3): a partition that
                // communicates abnormally slowly with its ordering service
                // defers each sequencer request by the straggling interval.
                // Healthy partitions' updates still get their own
                // consecutive numbers, so only this partition's clients
                // pay — the sequencer contrast to Eunomia's stable-time
                // coupling.
                let extra = match &self.cfg.straggler {
                    Some(st)
                        if st.dc == self.dc
                            && st.partition == self.pidx
                            && ctx.now() >= st.from
                            && ctx.now() < st.to =>
                    {
                        st.interval
                    }
                    _ => 0,
                };
                if self.mode == SeqMode::Asynchronous {
                    // Bogus variant: apply + reply immediately with a
                    // provisional version; the sequencer runs in parallel.
                    self.provisional += 1;
                    let mut vts = deps.clone();
                    vts.set(DcId(self.dc as u16), Timestamp(self.provisional));
                    self.store.put_local(
                        key,
                        StoredVersion {
                            value: value.clone(),
                            vts: vts.clone(),
                            origin: DcId(self.dc as u16),
                        },
                    );
                    ctx.send(from, BMsg::UpdateReply { vts });
                }
                self.pending.push_back(PendingSeq {
                    client: from,
                    key,
                    value,
                    deps,
                });
                if extra > 0 {
                    ctx.send_delayed(sequencer, BMsg::SeqRequest, extra);
                } else {
                    ctx.send(sequencer, BMsg::SeqRequest);
                }
            }
            BMsg::SeqReply { seq } => {
                ctx.consume(costs.scalar_meta_ns);
                let p = self
                    .pending
                    .pop_front()
                    .expect("sequencer replies match requests");
                let mut vts = p.deps.clone();
                vts.set(DcId(self.dc as u16), Timestamp(seq));
                let update = Update {
                    key: p.key,
                    value: p.value.clone(),
                    vts: vts.clone(),
                    origin: DcId(self.dc as u16),
                };
                if self.mode == SeqMode::Synchronous {
                    // The client has been waiting for this round trip.
                    self.store.put_local(
                        p.key,
                        StoredVersion {
                            value: p.value,
                            vts: vts.clone(),
                            origin: DcId(self.dc as u16),
                        },
                    );
                    ctx.send(p.client, BMsg::UpdateReply { vts });
                }
                // Both modes log the local commit under its *sequenced*
                // identity — the (origin, seq) that remote applies carry
                // (A-Seq's provisional store write has no stable id).
                self.metrics
                    .record_apply(eunomia_geo::metrics::ApplyRecord {
                        origin: self.dc as u16,
                        dest: self.dc as u16,
                        key: update.key.0,
                        ts: seq,
                        vts: update.vts.as_ticks(),
                        at: ctx.now(),
                    });
                self.ship(ctx, update);
            }
            BMsg::SeqApply { update, arrival } => {
                ctx.consume(costs.apply_ns);
                let origin = update.origin;
                let seq = update.vts.get(origin).0;
                let extra = ctx.now().saturating_sub(arrival);
                self.metrics
                    .record_visibility(origin.0, self.dc as u16, ctx.now(), extra);
                self.metrics
                    .record_apply(eunomia_geo::metrics::ApplyRecord {
                        origin: origin.0,
                        dest: self.dc as u16,
                        key: update.key.0,
                        ts: seq,
                        vts: update.vts.as_ticks(),
                        at: ctx.now(),
                    });
                self.store.put_remote(
                    update.key,
                    StoredVersion {
                        value: update.value,
                        vts: update.vts,
                        origin,
                    },
                );
                let receiver = self.reg.borrow().seq_receiver(self.dc);
                ctx.send(receiver, BMsg::SeqApplyOk { origin, seq });
            }
            other => {
                debug_assert!(
                    false,
                    "seq partition received unexpected message: {other:?}"
                );
            }
        }
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        h.write_usize(self.pidx);
        self.store.state_digest(h);
        h.write_usize(self.pending.len());
        for p in &self.pending {
            h.write_u32(p.client.0);
            (p.key, &p.value, &p.deps).hash(&mut h);
        }
        h.write_u64(self.provisional);
        true
    }
}

/// The per-datacenter sequencer service.
pub struct SequencerProc {
    state: Sequencer,
    cfg: Rc<ClusterConfig>,
    requests: u64,
}

impl SequencerProc {
    fn new(cfg: Rc<ClusterConfig>) -> Self {
        SequencerProc {
            state: Sequencer::new(),
            cfg,
            requests: 0,
        }
    }
}

impl Process<BMsg> for SequencerProc {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, from: ProcessId, msg: BMsg) {
        match msg {
            BMsg::SeqRequest => {
                ctx.consume(self.cfg.costs.seq_req_ns);
                self.requests += 1;
                ctx.send(
                    from,
                    BMsg::SeqReply {
                        seq: self.state.next_seq(),
                    },
                );
            }
            other => {
                debug_assert!(false, "sequencer received unexpected message: {other:?}");
            }
        }
    }

    fn mc_state(&self, h: &mut dyn std::hash::Hasher) -> bool {
        h.write_u64(self.state.last());
        h.write_u64(self.requests);
        true
    }
}

/// Receiver for sequenced remote updates: applies the `s`-th update of
/// each origin once the `s-1`-th is in and its cross-DC dependencies are
/// covered — the trivially cheap dependency check sequencer systems enjoy.
pub struct SeqReceiverProc {
    dc: usize,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    queues: Vec<BTreeMap<u64, (Update, SimTime)>>,
    next_expected: Vec<u64>,
    site_seq: Vec<u64>,
    in_flight: Option<(usize, u64)>,
}

impl SeqReceiverProc {
    fn new(dc: usize, cfg: Rc<ClusterConfig>, reg: SharedRegistry) -> Self {
        let n = cfg.n_dcs;
        SeqReceiverProc {
            dc,
            cfg,
            reg,
            queues: vec![BTreeMap::new(); n],
            next_expected: vec![1; n],
            site_seq: vec![0; n],
            in_flight: None,
        }
    }

    fn flush(&mut self, ctx: &mut Context<'_, BMsg>) {
        if self.in_flight.is_some() {
            return;
        }
        for k in 0..self.cfg.n_dcs {
            if k == self.dc {
                continue;
            }
            let Some((&seq, (update, arrival))) = self.queues[k].first_key_value() else {
                continue;
            };
            if seq != self.next_expected[k] {
                continue; // Gap: an earlier sequenced update is in flight.
            }
            let deps_ok = (0..self.cfg.n_dcs)
                .filter(|d| *d != self.dc && *d != k)
                .all(|d| update.vts.get(DcId(d as u16)).0 <= self.site_seq[d]);
            if !deps_ok {
                continue;
            }
            ctx.consume(self.cfg.costs.receiver_op_ns);
            self.in_flight = Some((k, seq));
            let pidx = ring::responsible(update.key, self.cfg.partitions_per_dc);
            let target = self.reg.borrow().partition(self.dc, pidx.index());
            ctx.send(
                target,
                BMsg::SeqApply {
                    update: update.clone(),
                    arrival: *arrival,
                },
            );
            return;
        }
    }
}

impl Process<BMsg> for SeqReceiverProc {
    fn on_start(&mut self, ctx: &mut Context<'_, BMsg>) {
        ctx.set_timer(self.cfg.rho, TIMER_RHO);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, _from: ProcessId, msg: BMsg) {
        match msg {
            BMsg::SeqShip { update } => {
                ctx.consume(self.cfg.costs.receiver_op_ns);
                let origin = update.origin.index();
                let seq = update.vts.get(update.origin).0;
                self.queues[origin].insert(seq, (update, ctx.now()));
                self.flush(ctx);
            }
            BMsg::SeqApplyOk { origin, seq } => {
                ctx.consume(self.cfg.costs.receiver_op_ns);
                let o = origin.index();
                debug_assert_eq!(self.in_flight, Some((o, seq)));
                self.queues[o].remove(&seq);
                self.site_seq[o] = seq;
                self.next_expected[o] = seq + 1;
                self.in_flight = None;
                self.flush(ctx);
            }
            other => {
                debug_assert!(false, "seq receiver received unexpected message: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BMsg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_RHO);
        self.flush(ctx);
        ctx.set_timer(self.cfg.rho, TIMER_RHO);
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        // Queued sequenced updates: identity only — the recorded arrival
        // instants are visibility bookkeeping, excluded by the engine's
        // time abstraction (see `Simulation::mc_fingerprint`).
        for q in &self.queues {
            h.write_usize(q.len());
            for (seq, (update, _arrival)) in q {
                (seq, update).hash(&mut h);
            }
        }
        self.next_expected.hash(&mut h);
        self.site_seq.hash(&mut h);
        self.in_flight.hash(&mut h);
        true
    }
}

/// Client for the sequencer systems (closed- or open-loop; vector of
/// per-DC sequence numbers as the session clock).
pub struct SeqClientProc {
    dc: usize,
    vclock: VectorTime,
    gen: OpGenerator,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    issued_at: SimTime,
    pending_is_update: bool,
    completed: u64,
    open: Option<OpenLoopDriver>,
}

impl SeqClientProc {
    fn new(dc: usize, cfg: Rc<ClusterConfig>, reg: SharedRegistry, metrics: GeoMetrics) -> Self {
        let open = cfg
            .open_loop
            .as_ref()
            .map(|ol| OpenLoopDriver::new(&ol.arrivals, ol.queue_limit));
        SeqClientProc {
            dc,
            vclock: VectorTime::new(cfg.n_dcs),
            gen: cfg.workload.generator(),
            cfg,
            reg,
            metrics,
            issued_at: 0,
            pending_is_update: false,
            completed: 0,
            open,
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, BMsg>) {
        let op = self.gen.next_op(ctx.rng());
        self.send_op(ctx, op);
    }

    fn send_op(&mut self, ctx: &mut Context<'_, BMsg>, op: Op) {
        let key = Key(op.key());
        let partition = ring::responsible(key, self.cfg.partitions_per_dc);
        let target = self.reg.borrow().partition(self.dc, partition.index());
        self.issued_at = ctx.now();
        match op {
            Op::Read(_) => {
                self.pending_is_update = false;
                ctx.send(target, BMsg::Read { key });
            }
            Op::Update(_, value) => {
                self.pending_is_update = true;
                ctx.send(
                    target,
                    BMsg::Update {
                        key,
                        value,
                        deps: self.vclock.clone(),
                    },
                );
            }
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, BMsg>, vts: &VectorTime) {
        self.vclock.merge_max(vts);
        let now = ctx.now();
        if let Some(driver) = self.open.as_mut() {
            let (intended, next) = driver.on_completion(now, self.issued_at, &self.metrics);
            self.metrics.record_op(
                self.dc,
                now,
                now.saturating_sub(intended),
                self.pending_is_update,
            );
            self.completed += 1;
            if let Some(op) = next {
                if self.under_budget() {
                    self.send_op(ctx, op);
                }
            }
            return;
        }
        let latency = now.saturating_sub(self.issued_at);
        self.metrics
            .record_op(self.dc, now, latency, self.pending_is_update);
        self.completed += 1;
        if self.under_budget() {
            self.issue(ctx);
        }
    }

    fn under_budget(&self) -> bool {
        self.cfg
            .ops_per_client
            .is_none_or(|budget| self.completed < budget)
    }
}

impl Process<BMsg> for SeqClientProc {
    fn on_start(&mut self, ctx: &mut Context<'_, BMsg>) {
        match self.open.as_mut() {
            Some(driver) => driver.start(ctx),
            None => self.issue(ctx),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BMsg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_ARRIVAL, "seq client has no other timers");
        if !self.under_budget() {
            return;
        }
        let op = self.gen.next_op(ctx.rng());
        let driver = self.open.as_mut().expect("arrival timer without driver");
        if let Admission::Issue(op) = driver.on_arrival(ctx, op, &self.metrics) {
            self.send_op(ctx, op);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, _from: ProcessId, msg: BMsg) {
        match msg {
            BMsg::ReadReply { vts, .. } | BMsg::UpdateReply { vts } => {
                let vts = vts.clone();
                self.complete(ctx, &vts);
            }
            other => {
                debug_assert!(false, "seq client received unexpected message: {other:?}");
            }
        }
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        self.vclock.hash(&mut h);
        self.gen.state_digest(h);
        self.pending_is_update.hash(&mut h);
        h.write_u64(self.completed);
        if let Some(driver) = &self.open {
            driver.state_digest(h);
        }
        true
    }
}

/// Builds an S-Seq or A-Seq deployment.
pub fn build(
    mode: SeqMode,
    cfg: ClusterConfig,
) -> (Simulation<BMsg>, GeoMetrics, Rc<ClusterConfig>) {
    let cfg = Rc::new(cfg);
    let metrics = GeoMetrics::new(cfg.n_dcs);
    if cfg.apply_log {
        metrics.enable_apply_log();
    }
    if cfg.track_staleness {
        metrics.enable_staleness_tracking();
    }
    let reg = registry::shared();
    let mut sim: Simulation<BMsg> = Simulation::new(cfg.topology(), cfg.seed);

    let mut partitions = Vec::new();
    let mut sequencers = Vec::new();
    let mut seq_receivers = Vec::new();
    for dc in 0..cfg.n_dcs {
        let mut dc_parts = Vec::new();
        for p in 0..cfg.partitions_per_dc {
            let proc =
                SeqPartitionProc::new(mode, dc, p, cfg.clone(), reg.clone(), metrics.clone());
            dc_parts.push(sim.add_process(dc, Box::new(proc)));
        }
        partitions.push(dc_parts);
        sequencers.push(sim.add_process(dc, Box::new(SequencerProc::new(cfg.clone()))));
        seq_receivers.push(sim.add_process(
            dc,
            Box::new(SeqReceiverProc::new(dc, cfg.clone(), reg.clone())),
        ));
        for _ in 0..cfg.clients_per_dc {
            let client = SeqClientProc::new(dc, cfg.clone(), reg.clone(), metrics.clone());
            sim.add_process(dc, Box::new(client));
        }
    }
    // The shared timed fault schedule (partitions, gray links, pauses).
    eunomia_geo::apply_faults(&cfg, &mut sim, &partitions);
    {
        let mut r = reg.borrow_mut();
        r.partitions = partitions;
        r.sequencers = sequencers;
        r.seq_receivers = seq_receivers;
    }
    (sim, metrics, cfg)
}

/// Builds, runs and reports an S-Seq or A-Seq deployment.
/// Crate-private: external callers go through `eunomia_geo::run`.
pub(crate) fn run(mode: SeqMode, cfg: ClusterConfig) -> RunReport {
    let (mut sim, metrics, cfg) = build(mode, cfg);
    sim.run_until(cfg.duration);
    make_report(mode.label(), &metrics, &cfg, sim.stats())
}

#[cfg(test)]
mod receiver_unit_tests {
    use super::*;
    use eunomia_geo::registry;

    fn receiver() -> SeqReceiverProc {
        SeqReceiverProc::new(0, Rc::new(ClusterConfig::default()), registry::shared())
    }

    fn shipped(origin: u16, seq: u64, deps: &[u64]) -> (Update, SimTime) {
        let mut vts = VectorTime::from_ticks(deps);
        vts.set(DcId(origin), Timestamp(seq));
        (
            Update {
                key: Key(seq),
                value: Value::new(),
                vts,
                origin: DcId(origin),
            },
            0,
        )
    }

    #[test]
    fn gaps_block_until_contiguous() {
        let mut r = receiver();
        // Sequence 2 arrives before 1: nothing is dispatchable.
        let (u2, a2) = shipped(1, 2, &[0, 0, 0]);
        r.queues[1].insert(2, (u2, a2));
        assert_ne!(r.next_expected[1], 2);
        // Seq 1 closes the gap.
        let (u1, a1) = shipped(1, 1, &[0, 0, 0]);
        r.queues[1].insert(1, (u1, a1));
        assert_eq!(*r.queues[1].first_key_value().unwrap().0, 1);
        assert_eq!(r.next_expected[1], 1);
    }

    #[test]
    fn cross_dc_deps_gate_on_site_seq() {
        let r = {
            let mut r = receiver();
            r.site_seq[2] = 4;
            r
        };
        // Update from dc1 depending on dc2's 5th update: not yet covered.
        let (u, _) = shipped(1, 1, &[0, 0, 5]);
        let deps_ok = (0..3)
            .filter(|d| *d != 0 && *d != 1)
            .all(|d| u.vts.get(DcId(d as u16)).0 <= r.site_seq[d]);
        assert!(!deps_ok);
        // Once dc2's 5th applied, it clears.
        let mut r = r;
        r.site_seq[2] = 5;
        let deps_ok = (0..3)
            .filter(|d| *d != 0 && *d != 1)
            .all(|d| u.vts.get(DcId(d as u16)).0 <= r.site_seq[d]);
        assert!(deps_ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sseq_small_run_replicates() {
        let report = run(SeqMode::Synchronous, ClusterConfig::small_test());
        assert!(report.total_ops > 100);
        assert!(!report
            .metrics
            .visibility_extras(0, 1, 0, u64::MAX)
            .is_empty());
    }

    #[test]
    fn aseq_outruns_sseq() {
        // The bogus async variant avoids the sequencer round trip in the
        // critical path, so its throughput must be at least S-Seq's.
        let s = run(SeqMode::Synchronous, ClusterConfig::small_test());
        let a = run(SeqMode::Asynchronous, ClusterConfig::small_test());
        assert!(
            a.throughput >= s.throughput,
            "A-Seq {} < S-Seq {}",
            a.throughput,
            s.throughput
        );
    }

    #[test]
    fn sequencer_visibility_extra_is_small() {
        // Sequencer-based systems apply remote updates as soon as the
        // sequence is contiguous: extra delay ~ queueing only.
        let report = run(SeqMode::Synchronous, ClusterConfig::small_test());
        let p90 = report.visibility_percentile_ms(0, 1, 90.0).unwrap();
        assert!(
            p90 < 50.0,
            "p90 extra {p90} ms too large for a sequencer system"
        );
    }
}
