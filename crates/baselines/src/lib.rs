#![warn(missing_docs)]

//! Baseline systems the paper compares Eunomia against, built on the same
//! substrate (`eunomia-kv` storage, `eunomia-sim` network, the cost model
//! and metrics of `eunomia-geo`) — mirroring the paper's methodology,
//! where GentleRain and Cure "are implemented using the codebase of
//! EunomiaKV" (§7.2).
//!
//! * [`gs`] — **GentleRain** (scalar global stable time, Du et al.,
//!   SoCC '14) and **Cure** (vector global stable vector, Akkoorath et
//!   al., ICDCS '16): sequencer-free designs that make remote updates
//!   visible through a background *global* (cross-datacenter)
//!   stabilization procedure.
//! * [`seq`] — **S-Seq** (a synchronous sequencer per datacenter in the
//!   client critical path, as in SwiftCloud/ChainReaction) and **A-Seq**
//!   (the paper's bogus asynchronous variant that does the same work off
//!   the critical path but fails to capture causality; §2).
//!
//! All four run under the shared [`eunomia_geo::ClusterConfig`] and report
//! through [`eunomia_geo::harness::RunReport`], so every figure harness
//! compares like with like.

pub mod gs;
pub mod msg;
pub mod seq;

use eunomia_geo::harness::RunReport;
use eunomia_geo::ClusterConfig;

/// The four baseline systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// Global stabilization with a single scalar (favours throughput).
    GentleRain,
    /// Global stabilization with a vector clock (favours visibility).
    Cure,
    /// Synchronous sequencer per datacenter (in the client critical path).
    SSeq,
    /// Asynchronous (bogus) sequencer variant: same work, off the critical
    /// path, no causality.
    ASeq,
}

/// Label used in reports and harness output.
pub fn label(kind: BaselineKind) -> &'static str {
    match kind {
        BaselineKind::GentleRain => "GentleRain",
        BaselineKind::Cure => "Cure",
        BaselineKind::SSeq => "S-Seq",
        BaselineKind::ASeq => "A-Seq",
    }
}

/// Builds, runs and reports a baseline system under `cfg`.
pub fn run_baseline(kind: BaselineKind, cfg: ClusterConfig) -> RunReport {
    match kind {
        BaselineKind::GentleRain => gs::run(gs::StabilizationMode::Scalar, cfg),
        BaselineKind::Cure => gs::run(gs::StabilizationMode::Vector, cfg),
        BaselineKind::SSeq => seq::run(seq::SeqMode::Synchronous, cfg),
        BaselineKind::ASeq => seq::run(seq::SeqMode::Asynchronous, cfg),
    }
}
