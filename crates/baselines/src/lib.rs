#![warn(missing_docs)]

//! Baseline systems the paper compares Eunomia against, built on the same
//! substrate (`eunomia-kv` storage, `eunomia-sim` network, the cost model
//! and metrics of `eunomia-geo`) — mirroring the paper's methodology,
//! where GentleRain and Cure "are implemented using the codebase of
//! EunomiaKV" (§7.2).
//!
//! * [`gs`] — **GentleRain** (scalar global stable time, Du et al.,
//!   SoCC '14) and **Cure** (vector global stable vector, Akkoorath et
//!   al., ICDCS '16): sequencer-free designs that make remote updates
//!   visible through a background *global* (cross-datacenter)
//!   stabilization procedure.
//! * [`seq`] — **S-Seq** (a synchronous sequencer per datacenter in the
//!   client critical path, as in SwiftCloud/ChainReaction) and **A-Seq**
//!   (the paper's bogus asynchronous variant that does the same work off
//!   the critical path but fails to capture causality; §2).
//!
//! All four run under the shared [`eunomia_geo::ClusterConfig`] and report
//! through [`eunomia_geo::harness::RunReport`], so every figure harness
//! compares like with like.
//!
//! There is no separate entry point for baselines: [`install`] registers
//! them into `eunomia-geo`'s system registry, after which
//! `eunomia_geo::run(SystemId, &Scenario)` drives all six systems
//! uniformly. The `eunomia` facade and `eunomia_bench::BenchArgs::parse`
//! call [`install`] automatically.

pub mod gs;
pub mod msg;
pub mod seq;

use eunomia_geo::harness::RunReport;
use eunomia_geo::mc::{drive, McReport, McScenario};
use eunomia_geo::{register_mc_runner, register_runner, ClusterConfig, SystemId};
use eunomia_sim::McTrace;
use std::sync::Once;

fn run_baseline(id: SystemId, cfg: &ClusterConfig) -> RunReport {
    match id {
        SystemId::GentleRain => gs::run(gs::StabilizationMode::Scalar, cfg.clone()),
        SystemId::Cure => gs::run(gs::StabilizationMode::Vector, cfg.clone()),
        SystemId::SSeq => seq::run(seq::SeqMode::Synchronous, cfg.clone()),
        SystemId::ASeq => seq::run(seq::SeqMode::Asynchronous, cfg.clone()),
        native => unreachable!("{native} is assembled by eunomia-geo"),
    }
}

fn mc_baseline(id: SystemId, sc: &McScenario, trace: Option<&McTrace>) -> McReport {
    let cfg = sc.cfg.clone();
    match id {
        SystemId::GentleRain | SystemId::Cure => {
            let mode = if id == SystemId::GentleRain {
                gs::StabilizationMode::Scalar
            } else {
                gs::StabilizationMode::Vector
            };
            drive(
                id.label(),
                sc,
                move || {
                    let (sim, metrics, _) = gs::build(mode, cfg.clone());
                    (sim, metrics)
                },
                trace,
            )
        }
        SystemId::SSeq | SystemId::ASeq => {
            let mode = if id == SystemId::SSeq {
                seq::SeqMode::Synchronous
            } else {
                seq::SeqMode::Asynchronous
            };
            drive(
                id.label(),
                sc,
                move || {
                    let (sim, metrics, _) = seq::build(mode, cfg.clone());
                    (sim, metrics)
                },
                trace,
            )
        }
        native => unreachable!("{native} is assembled by eunomia-geo"),
    }
}

/// Registers GentleRain, Cure, S-Seq and A-Seq in `eunomia-geo`'s system
/// registry so `eunomia_geo::run` can dispatch to them. Idempotent and
/// cheap; call it once at startup (the `eunomia` facade's `run` and
/// `eunomia_bench::BenchArgs::parse` already do).
pub fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        for id in [
            SystemId::GentleRain,
            SystemId::Cure,
            SystemId::SSeq,
            SystemId::ASeq,
        ] {
            register_runner(id, run_baseline);
            register_mc_runner(id, mc_baseline);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use eunomia_geo::Scenario;

    #[test]
    fn install_makes_every_system_runnable_through_geo() {
        install();
        install(); // idempotent
        let sc = Scenario::small_test();
        for id in SystemId::all() {
            let report = eunomia_geo::run(id, &sc);
            assert!(report.total_ops > 100, "{id}: {} ops", report.total_ops);
            assert_eq!(report.system, id.label());
        }
    }
}
