//! Messages of the baseline systems.
//!
//! GentleRain is the scalar special case of the vector machinery, so both
//! global-stabilization systems share the same message shapes with
//! [`eunomia_core::time::VectorTime`] payloads (GentleRain vectors carry
//! meaningful data in one comparison — the min — and its per-op costs are
//! charged as scalar). Sequencer systems use per-datacenter sequence
//! numbers packed into the same vector type.

use eunomia_core::ids::{DcId, PartitionId};
use eunomia_core::time::{Timestamp, VectorTime};
use eunomia_kv::{Key, Update, Value};

/// All messages of the GentleRain / Cure / S-Seq / A-Seq systems.
#[derive(Clone, Debug, Hash)]
pub enum BMsg {
    /// Client → partition: read.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Partition → client: read reply (version timestamp semantics depend
    /// on the system: update vector for GentleRain/Cure, per-DC sequence
    /// numbers for the sequencer systems).
    ReadReply {
        /// Stored value.
        value: Value,
        /// Version timestamp.
        vts: VectorTime,
    },
    /// Client → partition: update with dependency metadata.
    Update {
        /// Key to update.
        key: Key,
        /// New value.
        value: Value,
        /// Dependency clock (scalar systems use the max entry).
        deps: VectorTime,
    },
    /// Partition → client: update reply.
    UpdateReply {
        /// Assigned timestamp.
        vts: VectorTime,
    },
    /// Partition → remote sibling partition: replicated update
    /// (GentleRain/Cure ship updates directly, FIFO, in timestamp order).
    Replicate {
        /// The update (vts carries ut in the origin entry for GentleRain).
        update: Update,
    },
    /// Sibling heartbeat across datacenters (global stabilization):
    /// "partition `partition` of datacenter `origin` has issued everything
    /// up to `ts`".
    SiblingHeartbeat {
        /// Originating datacenter.
        origin: DcId,
        /// Originating partition.
        partition: PartitionId,
        /// Physical-clock timestamp.
        ts: Timestamp,
    },
    /// Partition → aggregator: local stable report (LST as a one-min
    /// vector for GentleRain, LSV for Cure).
    StableReport {
        /// Reporting partition.
        partition: PartitionId,
        /// The partition's minimum knowledge vector.
        lsv: VectorTime,
    },
    /// Aggregator → partitions: the datacenter's global stable time/vector.
    StableBroadcast {
        /// GST (scalar systems read the min entry) or GSV.
        gsv: VectorTime,
    },
    /// Partition → sequencer: request the next sequence number (S-Seq:
    /// synchronous, in the update critical path; A-Seq: fired in parallel).
    SeqRequest,
    /// Sequencer → partition: the assigned number.
    SeqReply {
        /// Monotonically increasing per-datacenter sequence number.
        seq: u64,
    },
    /// Partition → remote sequencer receiver: a sequenced update.
    SeqShip {
        /// The update; `vts` holds per-DC sequence-number dependencies and
        /// the origin entry holds this update's own sequence number.
        update: Update,
    },
    /// Sequencer receiver → partition: apply a remote sequenced update.
    SeqApply {
        /// The update to apply.
        update: Update,
        /// Arrival time at the receiver (for visibility accounting).
        arrival: eunomia_sim::SimTime,
    },
    /// Partition → sequencer receiver: apply done.
    SeqApplyOk {
        /// Origin datacenter of the applied update.
        origin: DcId,
        /// Its sequence number.
        seq: u64,
    },
}
