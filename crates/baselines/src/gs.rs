//! Global-stabilization baselines: GentleRain (scalar) and Cure (vector).
//!
//! Both are sequencer-free: partitions timestamp updates with *physical*
//! clocks and ship them directly to sibling partitions across datacenters
//! (FIFO, timestamp order). A remote update becomes visible only when the
//! background **global stabilization procedure** proves all its potential
//! dependencies have arrived:
//!
//! * each partition tracks, per datacenter, the latest timestamp received
//!   from its sibling there (updates or heartbeats);
//! * periodically every partition reports that knowledge vector to a
//!   per-datacenter aggregator, which broadcasts the entrywise minimum —
//!   the **GSV** (Cure) or its overall minimum, the **GST** (GentleRain);
//! * a buffered remote update from datacenter `k` applies when
//!   GST `>=` its scalar timestamp (GentleRain) or when GSV covers its
//!   vector (Cure).
//!
//! Two consequences the paper measures fall straight out of this design:
//! GentleRain's scalar compresses everything to the min over *all*
//! datacenters, so visibility pays the latency to the farthest one; and
//! the procedure burns partition CPU proportional to `1/interval` (and to
//! the vector width for Cure), which is the throughput cost of Fig. 1 and
//! Fig. 5. Unlike Eunomia's scalar-HLC, these physical-clock protocols
//! must *wait out* clock skew when a dependency is ahead of the local
//! clock (§3.2) — reproduced here via deferred retry.

use crate::msg::BMsg;
use eunomia_core::ids::{DcId, PartitionId};
use eunomia_core::time::{Timestamp, VectorTime};
use eunomia_geo::config::{ClusterConfig, CostModel};
use eunomia_geo::harness::{make_report, RunReport};
use eunomia_geo::metrics::GeoMetrics;
use eunomia_geo::open_loop::{Admission, OpenLoopDriver, TIMER_ARRIVAL};
use eunomia_geo::registry::{self, SharedRegistry};
use eunomia_kv::store::{StoredVersion, VersionedStore};
use eunomia_kv::{ring, Key, Update, Value};
use eunomia_sim::{ClockModel, Context, Process, ProcessId, SimTime, Simulation};
use eunomia_workload::{Op, OpGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

const TIMER_REPORT: u64 = 10;
const TIMER_SIBLING_HB: u64 = 11;
const TIMER_RETRY: u64 = 12;
const TIMER_AGGREGATE: u64 = 13;

/// Scalar (GentleRain) or vector (Cure) stabilization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StabilizationMode {
    /// One timestamp for everything: cheap metadata, far-DC visibility.
    Scalar,
    /// One entry per datacenter: origin-latency visibility, costlier
    /// metadata.
    Vector,
}

impl StabilizationMode {
    fn label(self) -> &'static str {
        match self {
            StabilizationMode::Scalar => "GentleRain",
            StabilizationMode::Vector => "Cure",
        }
    }
}

/// Per-op metadata cost for the mode.
fn meta_cost(mode: StabilizationMode, costs: &CostModel, n_dcs: usize) -> u64 {
    match mode {
        StabilizationMode::Scalar => costs.scalar_meta_ns,
        StabilizationMode::Vector => costs.stab_vector_entry_ns * n_dcs as u64,
    }
}

struct WaitingUpdate {
    client: ProcessId,
    key: Key,
    value: Value,
    deps: VectorTime,
    wake: SimTime,
}

/// Partition actor for the global-stabilization systems.
pub struct GsPartitionProc {
    mode: StabilizationMode,
    dc: usize,
    pidx: usize,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    store: VersionedStore,
    /// Latest timestamp this partition issued (updates or heartbeats).
    max_ts: Timestamp,
    /// Knowledge vector: `pvc[k]` = latest timestamp received from the
    /// sibling partition in datacenter `k`; own entry refreshed from the
    /// physical clock at report time.
    pvc: VectorTime,
    /// Buffered remote updates per origin, keyed by timestamp, with their
    /// arrival times.
    pending: Vec<BTreeMap<Timestamp, (Update, SimTime)>>,
    /// Latest stable broadcast (GSV; GentleRain reads its min).
    stable: VectorTime,
    /// Updates waiting out clock skew (physical clock behind dependency).
    waiting: VecDeque<WaitingUpdate>,
    /// Sim time of the last replicated update (heartbeat gating).
    last_replicate: SimTime,
}

impl GsPartitionProc {
    fn new(
        mode: StabilizationMode,
        dc: usize,
        pidx: usize,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        let n = cfg.n_dcs;
        GsPartitionProc {
            mode,
            dc,
            pidx,
            cfg,
            reg,
            metrics,
            store: VersionedStore::new(),
            max_ts: Timestamp::ZERO,
            pvc: VectorTime::new(n),
            pending: vec![BTreeMap::new(); n],
            stable: VectorTime::new(n),
            waiting: VecDeque::new(),
            last_replicate: 0,
        }
    }

    /// The dependency this update must wait out on the local physical
    /// clock: the whole causal past for the scalar system, only the local
    /// entry for the vector system (remote entries are enforced by GSV).
    fn wait_floor(&self, deps: &VectorTime) -> Timestamp {
        let dep = match self.mode {
            StabilizationMode::Scalar => deps.iter().fold(Timestamp::ZERO, |acc, t| acc.max(t)),
            StabilizationMode::Vector => deps.get(DcId(self.dc as u16)),
        };
        dep.max(self.max_ts)
    }

    fn handle_update(
        &mut self,
        ctx: &mut Context<'_, BMsg>,
        client: ProcessId,
        key: Key,
        value: Value,
        deps: VectorTime,
    ) {
        let physical = Timestamp(ctx.clock());
        let floor = self.wait_floor(&deps);
        if physical <= floor {
            // Physical-clock protocol: wait until the clock passes the
            // dependency (§3.2 — the delay Eunomia's hybrid clock avoids).
            let wait = floor.0 - physical.0 + 1;
            self.waiting.push_back(WaitingUpdate {
                client,
                key,
                value,
                deps,
                wake: ctx.now() + wait,
            });
            ctx.set_timer(wait, TIMER_RETRY);
            return;
        }
        let costs = &self.cfg.costs;
        ctx.consume(costs.update_ns + meta_cost(self.mode, costs, self.cfg.n_dcs));
        let ut = physical;
        self.max_ts = ut;
        let vts = match self.mode {
            StabilizationMode::Scalar => {
                let mut v = VectorTime::new(self.cfg.n_dcs);
                v.set(DcId(self.dc as u16), ut);
                v
            }
            StabilizationMode::Vector => {
                let mut v = deps.clone();
                v.set(DcId(self.dc as u16), ut);
                v
            }
        };
        let origin = DcId(self.dc as u16);
        self.store.put_local(
            key,
            StoredVersion {
                value: value.clone(),
                vts: vts.clone(),
                origin,
            },
        );
        self.metrics
            .record_apply(eunomia_geo::metrics::ApplyRecord {
                origin: origin.0,
                dest: origin.0,
                key: key.0,
                ts: ut.0,
                vts: vts.as_ticks(),
                at: ctx.now(),
            });
        ctx.send(client, BMsg::UpdateReply { vts: vts.clone() });
        let reg = self.reg.borrow();
        for k in 0..self.cfg.n_dcs {
            if k != self.dc {
                ctx.send(
                    reg.partition(k, self.pidx),
                    BMsg::Replicate {
                        update: Update {
                            key,
                            value: value.clone(),
                            vts: vts.clone(),
                            origin,
                        },
                    },
                );
            }
        }
        self.last_replicate = ctx.now();
    }

    fn visible(&self, update: &Update) -> bool {
        match self.mode {
            StabilizationMode::Scalar => update.vts.get(update.origin) <= self.stable.min_entry(),
            StabilizationMode::Vector => {
                // Every entry except the local one must be covered by GSV
                // (the origin entry's coverage is what bounds Cure's
                // visibility to origin latency + stabilization lag).
                self.stable
                    .dominates_except(&update.vts, &[DcId(self.dc as u16)])
            }
        }
    }

    fn try_apply(&mut self, ctx: &mut Context<'_, BMsg>) {
        for k in 0..self.cfg.n_dcs {
            if k == self.dc {
                continue;
            }
            while let Some((&ts, (update, arrival))) = self.pending[k].first_key_value() {
                if !self.visible(update) {
                    break;
                }
                ctx.consume(self.cfg.costs.apply_ns);
                let extra = ctx.now().saturating_sub(*arrival);
                self.metrics
                    .record_visibility(k as u16, self.dc as u16, ctx.now(), extra);
                let (update, _) = self.pending[k].remove(&ts).expect("key just seen");
                self.metrics
                    .record_apply(eunomia_geo::metrics::ApplyRecord {
                        origin: update.origin.0,
                        dest: self.dc as u16,
                        key: update.key.0,
                        ts: update.vts.get(update.origin).0,
                        vts: update.vts.as_ticks(),
                        at: ctx.now(),
                    });
                self.store.put_remote(
                    update.key,
                    StoredVersion {
                        value: update.value,
                        vts: update.vts,
                        origin: update.origin,
                    },
                );
            }
        }
    }
}

impl Process<BMsg> for GsPartitionProc {
    fn on_start(&mut self, ctx: &mut Context<'_, BMsg>) {
        ctx.set_timer(self.cfg.stab_aggregation_interval, TIMER_REPORT);
        ctx.set_timer(self.cfg.stab_heartbeat_interval, TIMER_SIBLING_HB);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, from: ProcessId, msg: BMsg) {
        let costs = self.cfg.costs;
        match msg {
            BMsg::Read { key } => {
                ctx.consume(costs.read_ns + meta_cost(self.mode, &costs, self.cfg.n_dcs));
                self.metrics.record_read(self.dc, key.0, ctx.now());
                let (value, vts) = match self.store.get(key) {
                    Some(v) => (v.value.clone(), v.vts.clone()),
                    None => (Value::new(), VectorTime::new(self.cfg.n_dcs)),
                };
                ctx.send(from, BMsg::ReadReply { value, vts });
            }
            BMsg::Update { key, value, deps } => {
                self.handle_update(ctx, from, key, value, deps);
            }
            BMsg::Replicate { update } => {
                ctx.consume(costs.stage_ns + meta_cost(self.mode, &costs, self.cfg.n_dcs));
                let k = update.origin.index();
                let ts = update.vts.get(update.origin);
                debug_assert!(
                    ts > self.pvc.get(update.origin),
                    "siblings replicate in timestamp order over FIFO links"
                );
                self.pvc.set(update.origin, ts);
                self.pending[k].insert(ts, (update, ctx.now()));
                self.try_apply(ctx);
            }
            BMsg::SiblingHeartbeat { origin, ts, .. } => {
                ctx.consume(costs.hb_ns);
                if ts > self.pvc.get(origin) {
                    self.pvc.set(origin, ts);
                }
            }
            BMsg::StableBroadcast { gsv } => {
                ctx.consume(costs.stab_broadcast_ns + meta_cost(self.mode, &costs, self.cfg.n_dcs));
                self.stable.merge_max(&gsv);
                self.try_apply(ctx);
            }
            other => {
                debug_assert!(false, "gs partition received unexpected message: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BMsg>, tag: u64) {
        let costs = self.cfg.costs;
        match tag {
            TIMER_REPORT => {
                // Refresh own entry from the physical clock: it advances
                // even when idle (the property §3.2 credits to physical
                // time), floored by the last issued timestamp.
                let clock = Timestamp(ctx.clock()).max(self.max_ts);
                self.pvc.set(DcId(self.dc as u16), clock);
                ctx.consume(costs.stab_report_ns + meta_cost(self.mode, &costs, self.cfg.n_dcs));
                let aggregator = self.reg.borrow().aggregator(self.dc);
                ctx.send(
                    aggregator,
                    BMsg::StableReport {
                        partition: PartitionId(self.pidx as u32),
                        lsv: self.pvc.clone(),
                    },
                );
                ctx.set_timer(self.cfg.stab_aggregation_interval, TIMER_REPORT);
            }
            TIMER_SIBLING_HB => {
                if ctx.now().saturating_sub(self.last_replicate) >= self.cfg.stab_heartbeat_interval
                {
                    let hb = Timestamp(ctx.clock()).max(self.max_ts.saturating_add(1));
                    self.max_ts = hb;
                    let reg = self.reg.borrow();
                    for k in 0..self.cfg.n_dcs {
                        if k != self.dc {
                            ctx.send(
                                reg.partition(k, self.pidx),
                                BMsg::SiblingHeartbeat {
                                    origin: DcId(self.dc as u16),
                                    partition: PartitionId(self.pidx as u32),
                                    ts: hb,
                                },
                            );
                        }
                    }
                    ctx.consume(costs.hb_ns * (self.cfg.n_dcs as u64 - 1));
                }
                ctx.set_timer(self.cfg.stab_heartbeat_interval, TIMER_SIBLING_HB);
            }
            TIMER_RETRY => {
                while self.waiting.front().is_some_and(|w| w.wake <= ctx.now()) {
                    let w = self.waiting.pop_front().expect("front just checked");
                    self.handle_update(ctx, w.client, w.key, w.value, w.deps);
                }
            }
            _ => debug_assert!(false, "unknown timer {tag}"),
        }
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        h.write_usize(self.pidx);
        self.store.state_digest(h);
        h.write_u64(self.max_ts.0);
        self.pvc.hash(&mut h);
        // Buffered remote updates: keys and payloads matter, the recorded
        // arrival times are visibility bookkeeping only (the engine's
        // time abstraction — see `Simulation::mc_fingerprint`).
        for q in &self.pending {
            h.write_usize(q.len());
            for (ts, (update, _arrival)) in q {
                (ts, update).hash(&mut h);
            }
        }
        self.stable.hash(&mut h);
        // Same abstraction for the clock-wait queue: the waiting ops'
        // identity is state, their wake instants are time.
        h.write_usize(self.waiting.len());
        for w in &self.waiting {
            h.write_u32(w.client.0);
            (w.key, &w.value, &w.deps).hash(&mut h);
        }
        true
    }
}

/// Per-datacenter aggregator: computes the entrywise minimum of partition
/// reports and broadcasts it on the clock-computation interval.
pub struct GsAggregatorProc {
    dc: usize,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    reports: Vec<Option<VectorTime>>,
}

impl GsAggregatorProc {
    fn new(dc: usize, cfg: Rc<ClusterConfig>, reg: SharedRegistry) -> Self {
        let n = cfg.partitions_per_dc;
        GsAggregatorProc {
            dc,
            cfg,
            reg,
            reports: vec![None; n],
        }
    }
}

impl Process<BMsg> for GsAggregatorProc {
    fn on_start(&mut self, ctx: &mut Context<'_, BMsg>) {
        ctx.set_timer(self.cfg.stab_aggregation_interval, TIMER_AGGREGATE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, _from: ProcessId, msg: BMsg) {
        match msg {
            BMsg::StableReport { partition, lsv } => {
                ctx.consume(self.cfg.costs.hb_ns);
                self.reports[partition.index()] = Some(lsv);
            }
            other => {
                debug_assert!(false, "aggregator received unexpected message: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BMsg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_AGGREGATE);
        if self.reports.iter().all(Option::is_some) {
            let mut gsv = self.reports[0].clone().expect("all present");
            for r in self.reports.iter().skip(1) {
                let r = r.as_ref().expect("all present");
                // Entrywise min.
                let mins: Vec<u64> = gsv.iter().zip(r.iter()).map(|(a, b)| a.min(b).0).collect();
                gsv = VectorTime::from_ticks(&mins);
            }
            ctx.consume(self.cfg.costs.hb_ns * self.cfg.partitions_per_dc as u64);
            let reg = self.reg.borrow();
            for p in 0..self.cfg.partitions_per_dc {
                ctx.send(
                    reg.partition(self.dc, p),
                    BMsg::StableBroadcast { gsv: gsv.clone() },
                );
            }
        }
        ctx.set_timer(self.cfg.stab_aggregation_interval, TIMER_AGGREGATE);
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        self.reports.hash(&mut h);
        true
    }
}

/// Client for the global-stabilization systems (closed- or open-loop).
///
/// Keeps a dependency vector merged from every reply (the scalar system
/// reduces it to its max at the partition), so one client serves both
/// modes.
pub struct GsClientProc {
    dc: usize,
    vclock: VectorTime,
    gen: OpGenerator,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    issued_at: SimTime,
    pending_is_update: bool,
    completed: u64,
    open: Option<OpenLoopDriver>,
}

impl GsClientProc {
    fn new(dc: usize, cfg: Rc<ClusterConfig>, reg: SharedRegistry, metrics: GeoMetrics) -> Self {
        let open = cfg
            .open_loop
            .as_ref()
            .map(|ol| OpenLoopDriver::new(&ol.arrivals, ol.queue_limit));
        GsClientProc {
            dc,
            vclock: VectorTime::new(cfg.n_dcs),
            gen: cfg.workload.generator(),
            cfg,
            reg,
            metrics,
            issued_at: 0,
            pending_is_update: false,
            completed: 0,
            open,
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, BMsg>) {
        let op = self.gen.next_op(ctx.rng());
        self.send_op(ctx, op);
    }

    fn send_op(&mut self, ctx: &mut Context<'_, BMsg>, op: Op) {
        let key = Key(op.key());
        let partition = ring::responsible(key, self.cfg.partitions_per_dc);
        let target = self.reg.borrow().partition(self.dc, partition.index());
        self.issued_at = ctx.now();
        match op {
            Op::Read(_) => {
                self.pending_is_update = false;
                ctx.send(target, BMsg::Read { key });
            }
            Op::Update(_, value) => {
                self.pending_is_update = true;
                ctx.send(
                    target,
                    BMsg::Update {
                        key,
                        value,
                        deps: self.vclock.clone(),
                    },
                );
            }
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, BMsg>, vts: &VectorTime) {
        self.vclock.merge_max(vts);
        let now = ctx.now();
        if let Some(driver) = self.open.as_mut() {
            let (intended, next) = driver.on_completion(now, self.issued_at, &self.metrics);
            self.metrics.record_op(
                self.dc,
                now,
                now.saturating_sub(intended),
                self.pending_is_update,
            );
            self.completed += 1;
            if let Some(op) = next {
                if self.under_budget() {
                    self.send_op(ctx, op);
                }
            }
            return;
        }
        let latency = now.saturating_sub(self.issued_at);
        self.metrics
            .record_op(self.dc, now, latency, self.pending_is_update);
        self.completed += 1;
        if self.under_budget() {
            self.issue(ctx);
        }
    }

    fn under_budget(&self) -> bool {
        self.cfg
            .ops_per_client
            .is_none_or(|budget| self.completed < budget)
    }
}

impl Process<BMsg> for GsClientProc {
    fn on_start(&mut self, ctx: &mut Context<'_, BMsg>) {
        match self.open.as_mut() {
            Some(driver) => driver.start(ctx),
            None => self.issue(ctx),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BMsg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_ARRIVAL, "gs client has no other timers");
        if !self.under_budget() {
            return;
        }
        let op = self.gen.next_op(ctx.rng());
        let driver = self.open.as_mut().expect("arrival timer without driver");
        if let Admission::Issue(op) = driver.on_arrival(ctx, op, &self.metrics) {
            self.send_op(ctx, op);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, _from: ProcessId, msg: BMsg) {
        match msg {
            BMsg::ReadReply { vts, .. } | BMsg::UpdateReply { vts } => {
                let vts = vts.clone();
                self.complete(ctx, &vts);
            }
            other => {
                debug_assert!(false, "gs client received unexpected message: {other:?}");
            }
        }
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        self.vclock.hash(&mut h);
        self.gen.state_digest(h);
        self.pending_is_update.hash(&mut h);
        h.write_u64(self.completed);
        if let Some(driver) = &self.open {
            driver.state_digest(h);
        }
        true
    }
}

fn draw_clock(cfg: &ClusterConfig, rng: &mut StdRng) -> ClockModel {
    if cfg.clock_skew == 0 && cfg.drift_ppm == 0.0 {
        return ClockModel::perfect();
    }
    let skew = cfg.clock_skew as i64;
    let offset = if skew > 0 {
        rng.random_range(-skew..=skew)
    } else {
        0
    };
    let drift = if cfg.drift_ppm > 0.0 {
        rng.random_range(-cfg.drift_ppm..=cfg.drift_ppm)
    } else {
        0.0
    };
    ClockModel::new(offset, drift)
}

/// Builds a GentleRain or Cure deployment.
pub fn build(
    mode: StabilizationMode,
    cfg: ClusterConfig,
) -> (Simulation<BMsg>, GeoMetrics, Rc<ClusterConfig>) {
    let cfg = Rc::new(cfg);
    let metrics = GeoMetrics::new(cfg.n_dcs);
    if cfg.apply_log {
        metrics.enable_apply_log();
    }
    if cfg.track_staleness {
        metrics.enable_staleness_tracking();
    }
    let reg = registry::shared();
    let mut sim: Simulation<BMsg> = Simulation::new(cfg.topology(), cfg.seed);
    let mut clock_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_C10C);

    let mut partitions = Vec::new();
    let mut aggregators = Vec::new();
    for dc in 0..cfg.n_dcs {
        let mut dc_parts = Vec::new();
        for p in 0..cfg.partitions_per_dc {
            let node = sim.add_node_with_clock(dc, draw_clock(&cfg, &mut clock_rng));
            let proc = GsPartitionProc::new(mode, dc, p, cfg.clone(), reg.clone(), metrics.clone());
            dc_parts.push(sim.add_process_on(node, Box::new(proc)));
        }
        partitions.push(dc_parts);
        let node = sim.add_node(dc);
        let agg = GsAggregatorProc::new(dc, cfg.clone(), reg.clone());
        aggregators.push(sim.add_process_on(node, Box::new(agg)));
        for _ in 0..cfg.clients_per_dc {
            let node = sim.add_node(dc);
            let client = GsClientProc::new(dc, cfg.clone(), reg.clone(), metrics.clone());
            sim.add_process_on(node, Box::new(client));
        }
    }
    // The shared timed fault schedule (partitions, gray links, pauses).
    eunomia_geo::apply_faults(&cfg, &mut sim, &partitions);
    {
        let mut r = reg.borrow_mut();
        r.partitions = partitions;
        r.aggregators = aggregators;
    }
    (sim, metrics, cfg)
}

/// Builds, runs and reports a GentleRain/Cure deployment.
/// Crate-private: external callers go through `eunomia_geo::run`.
pub(crate) fn run(mode: StabilizationMode, cfg: ClusterConfig) -> RunReport {
    let (mut sim, metrics, cfg) = build(mode, cfg);
    sim.run_until(cfg.duration);
    make_report(mode.label(), &metrics, &cfg, sim.stats())
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use eunomia_geo::registry;

    fn partition(mode: StabilizationMode, dc: usize) -> GsPartitionProc {
        let cfg = Rc::new(ClusterConfig::default());
        GsPartitionProc::new(mode, dc, 0, cfg, registry::shared(), GeoMetrics::new(3))
    }

    #[test]
    fn scalar_wait_floor_is_max_entry() {
        let mut p = partition(StabilizationMode::Scalar, 0);
        p.max_ts = Timestamp(50);
        let deps = VectorTime::from_ticks(&[10, 99, 20]);
        // GentleRain must wait out the WHOLE causal past (single scalar).
        assert_eq!(p.wait_floor(&deps), Timestamp(99));
        p.max_ts = Timestamp(120);
        assert_eq!(
            p.wait_floor(&deps),
            Timestamp(120),
            "own monotonicity also floors"
        );
    }

    #[test]
    fn vector_wait_floor_is_local_entry_only() {
        let mut p = partition(StabilizationMode::Vector, 0);
        p.max_ts = Timestamp(5);
        let deps = VectorTime::from_ticks(&[10, 999, 999]);
        // Cure waits only on its own datacenter's entry; remote entries
        // are enforced by the GSV check at apply time.
        assert_eq!(p.wait_floor(&deps), Timestamp(10));
    }

    #[test]
    fn scalar_visibility_gates_on_min_of_gst() {
        let mut p = partition(StabilizationMode::Scalar, 0);
        let u = Update {
            key: Key(1),
            value: Value::new(),
            vts: VectorTime::from_ticks(&[0, 50, 0]),
            origin: DcId(1),
        };
        p.stable = VectorTime::from_ticks(&[100, 60, 40]);
        // GST = min(100, 60, 40) = 40 < 50: not visible.
        assert!(!p.visible(&u));
        p.stable = VectorTime::from_ticks(&[100, 60, 55]);
        assert!(p.visible(&u));
    }

    #[test]
    fn vector_visibility_checks_all_remote_entries() {
        let mut p = partition(StabilizationMode::Vector, 0);
        let u = Update {
            key: Key(1),
            value: Value::new(),
            vts: VectorTime::from_ticks(&[999, 50, 30]),
            origin: DcId(1),
        };
        // Local entry (dc0) is exempt; dc1 and dc2 must be covered.
        p.stable = VectorTime::from_ticks(&[0, 50, 29]);
        assert!(!p.visible(&u), "dc2 dependency uncovered");
        p.stable = VectorTime::from_ticks(&[0, 50, 30]);
        assert!(p.visible(&u));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gentlerain_small_run_applies_remote_updates() {
        let report = run(StabilizationMode::Scalar, ClusterConfig::small_test());
        assert!(report.total_ops > 100);
        let v = report.metrics.visibility_extras(0, 1, 0, u64::MAX);
        assert!(!v.is_empty(), "remote updates must become visible");
    }

    #[test]
    fn cure_small_run_applies_remote_updates() {
        let report = run(StabilizationMode::Vector, ClusterConfig::small_test());
        assert!(report.total_ops > 100);
        let v = report.metrics.visibility_extras(1, 0, 0, u64::MAX);
        assert!(!v.is_empty(), "remote updates must become visible");
    }

    #[test]
    fn gentlerain_visibility_floor_includes_stabilization_lag() {
        // With a 20 ms RTT two-DC topology, GentleRain's extra delay is at
        // least the heartbeat/aggregation lag and never negative.
        let report = run(StabilizationMode::Scalar, ClusterConfig::small_test());
        let p50 = report.visibility_percentile_ms(0, 1, 50.0).unwrap();
        assert!(
            (0.0..100.0).contains(&p50),
            "p50 extra {p50} ms out of range"
        );
    }
}
