#![warn(missing_docs)]

//! Eunomia — unobtrusive deferred update stabilization for efficient
//! geo-replication.
//!
//! Facade crate re-exporting the whole workspace. This reproduces the
//! system of Gunawardhana, Bravo & Rodrigues, *"Unobtrusive Deferred Update
//! Stabilization for Efficient Geo-Replication"*, USENIX ATC 2017.
//!
//! The interesting entry points are:
//!
//! * [`core`] — the Eunomia service itself: hybrid clocks, the
//!   stabilization buffer, the fault-tolerant replica protocol, and the
//!   sequencer baselines.
//! * [`kv`] — the partitioned key-value store substrate (client sessions
//!   and partition timestamping, Algorithms 1–2 of the paper).
//! * [`geo`] — datacenter assembly: receivers, update propagation, and the
//!   full EunomiaKV system running on the discrete-event simulator.
//! * [`baselines`] — GentleRain, Cure, S-Seq and A-Seq built on the same
//!   substrate for apples-to-apples comparison.
//! * [`sim`] — the deterministic discrete-event simulator.
//! * [`runtime`] — real multi-threaded Eunomia/sequencer services used by
//!   the service-level benchmarks (§7.1 of the paper).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a single-datacenter Eunomia run and
//! `examples/geo_replication.rs` for a three-datacenter deployment.

pub use eunomia_baselines as baselines;
pub use eunomia_collections as collections;
pub use eunomia_core as core;
pub use eunomia_geo as geo;
pub use eunomia_kv as kv;
pub use eunomia_runtime as runtime;
pub use eunomia_sim as sim;
pub use eunomia_stats as stats;
pub use eunomia_workload as workload;
