#![warn(missing_docs)]

//! Eunomia — unobtrusive deferred update stabilization for efficient
//! geo-replication.
//!
//! Facade crate re-exporting the whole workspace. This reproduces the
//! system of Gunawardhana, Bravo & Rodrigues, *"Unobtrusive Deferred Update
//! Stabilization for Efficient Geo-Replication"*, USENIX ATC 2017.
//!
//! # The one API: `run(SystemId, &Scenario)`
//!
//! The paper's evaluation compares six systems on one substrate
//! (§7.2) — and so does this workspace, through a single entry point:
//!
//! * [`SystemId`] names every system: `Eventual`, `EunomiaKv`,
//!   `GentleRain`, `Cure`, `SSeq`, `ASeq`. It implements
//!   `Display`/`FromStr` (so `"cure".parse()` works) and
//!   [`SystemId::all`] drives whole-zoo comparisons.
//! * [`Scenario`] is a *named, validated* cluster configuration.
//!   Presets: [`Scenario::paper_three_dc`] (the paper's 3-DC
//!   deployment), [`Scenario::small_test`], [`Scenario::wide_five_dc`],
//!   [`Scenario::straggler`], [`Scenario::partial_replication`], plus
//!   the fault presets [`Scenario::partitioned_three_dc`],
//!   [`Scenario::gray_wan`], [`Scenario::hub_and_spoke`] and
//!   [`Scenario::asymmetric_five_dc`] (timed [`FaultEvent`] schedules:
//!   DC-pair partitions, gray links, asymmetric one-way latencies,
//!   paused partition servers — every system honours them, and
//!   [`RunReport::heal_convergence`] verifies convergence after the
//!   heal). Derive variants with [`Scenario::with`]; invalid
//!   configurations are rejected at construction (see
//!   [`ClusterConfigBuilder`]), not mid-run.
//! * [`run`] builds, runs and reports — any system, any scenario:
//!
//! ```no_run
//! use eunomia::{run, Scenario, SystemId};
//!
//! let scenario = Scenario::paper_three_dc().seconds(30).seed(42);
//! for id in SystemId::all() {
//!     let report = run(id, &scenario);
//!     println!("{:<12} {:>8.0} ops/s", report.system, report.throughput);
//! }
//! ```
//!
//! * [`Sweep`] runs a `[system x scenario]` grid and renders the shared
//!   comparison tables used by every figure harness.
//!
//! The four baseline systems live in [`baselines`] and register
//! themselves into [`geo`]'s system registry; this crate's [`run`]
//! installs them automatically (standalone `eunomia_geo` users call
//! `eunomia_baselines::install()` once).
//!
//! # Layers
//!
//! * [`core`] — the Eunomia service itself: hybrid clocks, the
//!   stabilization buffer, the fault-tolerant replica protocol, and the
//!   sequencer baselines.
//! * [`kv`] — the partitioned key-value store substrate (client sessions
//!   and partition timestamping, Algorithms 1–2 of the paper).
//! * [`geo`] — datacenter assembly: receivers, update propagation, the
//!   full EunomiaKV system on the discrete-event simulator, and the
//!   `SystemId`/`Scenario` run API.
//! * [`baselines`] — GentleRain, Cure, S-Seq and A-Seq built on the same
//!   substrate for apples-to-apples comparison.
//! * [`sim`] — the deterministic discrete-event simulator.
//! * [`runtime`] — real multi-threaded Eunomia/sequencer services used by
//!   the service-level benchmarks (§7.1 of the paper).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the one-call entry point,
//! `examples/compare_systems.rs` for the whole zoo on one workload, and
//! `examples/geo_replication.rs` for visibility analysis of the paper's
//! 3-DC deployment.

pub use eunomia_baselines as baselines;
pub use eunomia_collections as collections;
pub use eunomia_core as core;
pub use eunomia_geo as geo;
pub use eunomia_kv as kv;
pub use eunomia_runtime as runtime;
pub use eunomia_sim as sim;
pub use eunomia_stats as stats;
pub use eunomia_workload as workload;

pub use eunomia_geo::{
    ClusterConfig, ClusterConfigBuilder, ConfigError, FaultEvent, HealConvergence, LoadStats,
    McReport, McScenario, OpenLoopConfig, ReplicaCrash, RunReport, Scenario, Sweep, SweepResults,
    SystemId,
};
pub use eunomia_workload::{ArrivalProcess, ArrivalSpec, CompactTrace};

/// Builds, runs and reports `id` under `scenario` — with the baseline
/// runners installed, so all six systems work out of the box.
pub fn run(id: SystemId, scenario: &Scenario) -> RunReport {
    eunomia_baselines::install();
    eunomia_geo::run(id, scenario)
}

/// Model-checks `id` under `sc` (exhaustive schedule exploration with
/// causal/session/convergence predicates) — with the baseline MC runners
/// installed, so all six systems work out of the box.
pub fn mc_run(id: SystemId, sc: &McScenario) -> McReport {
    eunomia_baselines::install();
    eunomia_geo::mc_run(id, sc)
}

/// Replays a counterexample trace produced by [`mc_run`] against a fresh
/// build of the same scenario.
pub fn mc_replay(id: SystemId, sc: &McScenario, trace: &sim::McTrace) -> McReport {
    eunomia_baselines::install();
    eunomia_geo::mc_replay(id, sc, trace)
}

/// A [`Sweep`] with the baseline runners installed — use this instead of
/// `Sweep::run` when driving baselines through the facade.
pub fn sweep(sweep: &Sweep) -> SweepResults {
    eunomia_baselines::install();
    sweep.run()
}
