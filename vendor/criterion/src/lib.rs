//! Minimal vendored shim of the `criterion` API surface used by this
//! workspace's benches: `Criterion` with `bench_function` /
//! `benchmark_group`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `criterion`. It measures a warm-up pass, auto-scales the
//! iteration count to the configured measurement time, and prints
//! `name ... time: [median] est` lines — no statistics beyond mean/min,
//! no HTML reports. Good enough to compare the workspace's alternatives
//! (tree kinds, payload sizes, batching intervals) on one machine.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput used to report rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let throughput = self.throughput;
        run_bench(self.criterion, &full, throughput, &mut f);
        self
    }

    /// Closes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the printable benchmark id.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Iterations the measured closure must run this sample.
    iters: u64,
    /// Wall time the measured closure took.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn time_one<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F>(config: &Criterion, name: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up & calibration: find an iteration count whose sample takes
    // roughly measurement_time / sample_size.
    let mut iters: u64 = 1;
    let warm_deadline = Instant::now() + config.warm_up;
    let mut per_iter = Duration::from_nanos(1);
    while Instant::now() < warm_deadline {
        let d = time_one(f, iters);
        per_iter = d.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }
        if d < Duration::from_millis(1) {
            iters = iters.saturating_mul(4).max(iters + 1);
        } else {
            break;
        }
    }
    let target = config.measurement / config.sample_size as u32;
    let iters_per_sample =
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    let deadline = Instant::now() + config.measurement;
    for _ in 0..config.sample_size {
        let d = time_one(f, iters_per_sample);
        samples.push(d.as_nanos() as f64 / iters_per_sample as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples.first().copied().unwrap_or(median);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" {:.2} Melem/s", n as f64 / median * 1e3),
        Throughput::Bytes(n) => format!(" {:.2} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64),
    });
    println!(
        "{name:<50} time: [{} .. {}]{}",
        fmt_ns(min),
        fmt_ns(median),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, optionally with a configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| 1 + 1));
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
