//! Loom-lite interleaving checker for the bounded MPMC ring.
//!
//! The lock-free ring in [`crate::channel`] is correct only if the Vyukov
//! sequence-counter protocol is followed *exactly* — in particular, a
//! producer must write the slot's value **before** the `Release` store
//! that bumps the sequence counter, because that store is what licenses a
//! consumer to read the slot. Ordinary stress tests (like
//! `mpmc_contended_ring_loses_nothing`) only sample the schedules the OS
//! happens to produce; this module instead *enumerates* them.
//!
//! It re-expresses the push/pop algorithms as explicit micro-steps over a
//! modelled world (slot sequence counters, slot values, head/tail,
//! per-thread program counters and registers), then runs a depth-first
//! search over every interleaving of 2–3 virtual threads executing
//! scripted operations on a tiny ring. States are deduplicated by a
//! self-contained FNV-1a fingerprint of the *entire* world, which keeps
//! pruning sound: two identical worlds have identical futures.
//!
//! Checked at every step and at termination:
//!
//! * a consumer never observes a slot whose sequence counter says
//!   "filled" while the value is unwritten (in the real code this read
//!   would be UB — `MaybeUninit::assume_init_read` of uninitialized
//!   memory);
//! * no value is delivered twice, and at termination the multiset of
//!   delivered values plus ring remnants equals exactly the multiset of
//!   successfully pushed values — nothing lost, nothing duplicated.
//!
//! The checker must also be able to *fail*: [`Variant::BrokenSeqOrder`]
//! publishes the sequence counter before writing the value (the classic
//! transcription mistake), and the tests assert the search finds the
//! resulting uninitialized read. A checker that cannot catch the seeded
//! bug proves nothing about the faithful ring.

use std::collections::HashSet;

/// Which push implementation the model executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The shipped algorithm: value write, then `Release` seq store.
    Faithful,
    /// Deliberate mutation: seq store first, value write second. The
    /// checker must detect the window where a consumer reads an
    /// unwritten slot.
    BrokenSeqOrder,
}

/// One scripted operation for a virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `try_send(value)`; a full ring completes the op unsuccessfully
    /// (the caller-side retry loop adds no new ring states).
    Send(u64),
    /// One `try_recv`; an empty ring completes the op with nothing.
    Recv,
    /// `try_recv_batch(max)`: pop until empty or `max` values drained.
    RecvBatch(usize),
}

/// Search counters, for reporting and CI visibility.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterleaveStats {
    /// Distinct world states visited.
    pub states: u64,
    /// Micro-steps executed (including revisits pruned right after).
    pub steps: u64,
    /// Complete executions (every thread finished its script).
    pub terminals: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Self-contained FNV-1a over `u64` words (the vendored shim depends on
/// nothing, so it cannot borrow the workspace's pinned hasher — but it
/// uses the same constants, keeping fingerprints stable across builds).
fn fnv_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Program counter inside one modelled operation. Each variant is one
/// atomic action of the real algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pc {
    /// Load head (pop) or tail (push) into the thread register.
    LoadCounter,
    /// Load the claimed slot's sequence counter and branch.
    LoadSeq,
    /// CAS the shared counter from the register value.
    Cas,
    /// First post-CAS slot action (value write when faithful, seq
    /// publish when broken; value take for pop).
    SlotA,
    /// Second post-CAS slot action (seq publish when faithful, value
    /// write when broken; seq recycle for pop).
    SlotB,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Thread {
    script: Vec<Op>,
    /// Index of the current op; `script.len()` when finished.
    op: usize,
    pc: Pc,
    /// The ticket (head/tail snapshot) the op is working with.
    reg: usize,
    /// Values this thread successfully pushed.
    pushed: Vec<u64>,
    /// Values this thread popped.
    got: Vec<u64>,
    /// Remaining pops for the current `RecvBatch`.
    batch_left: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct World {
    cap: usize,
    seq: Vec<usize>,
    /// `None` models an uninitialized / moved-out slot.
    val: Vec<Option<u64>>,
    head: usize,
    tail: usize,
    threads: Vec<Thread>,
}

impl World {
    fn new(cap: usize, scripts: &[Vec<Op>]) -> Self {
        World {
            cap,
            seq: (0..cap).collect(),
            val: vec![None; cap],
            head: 0,
            tail: 0,
            threads: scripts
                .iter()
                .map(|s| Thread {
                    script: s.clone(),
                    op: 0,
                    pc: Pc::LoadCounter,
                    reg: 0,
                    pushed: Vec::new(),
                    got: Vec::new(),
                    batch_left: 0,
                })
                .collect(),
        }
    }

    /// Sound pruning requires fingerprinting *everything* that can
    /// influence the future — ring and threads alike.
    fn fingerprint(&self) -> u64 {
        let mut words: Vec<u64> = vec![self.cap as u64, self.head as u64, self.tail as u64];
        words.extend(self.seq.iter().map(|&s| s as u64));
        for v in &self.val {
            match v {
                Some(x) => words.extend([1, *x]),
                None => words.push(0),
            }
        }
        for t in &self.threads {
            words.extend([t.op as u64, t.pc as u64, t.reg as u64, t.batch_left as u64]);
            words.push(t.pushed.len() as u64);
            words.extend(t.pushed.iter().copied());
            words.push(t.got.len() as u64);
            words.extend(t.got.iter().copied());
        }
        fnv_words(words)
    }

    fn done(&self) -> bool {
        self.threads.iter().all(|t| t.op == t.script.len())
    }

    /// Advances thread `ti` by one atomic micro-step. `Err` is a caught
    /// protocol violation.
    fn step(&mut self, ti: usize, variant: Variant) -> Result<(), String> {
        let cap = self.cap;
        let op = {
            let t = &self.threads[ti];
            debug_assert!(t.op < t.script.len(), "finished threads are not runnable");
            t.script[t.op]
        };
        match op {
            Op::Send(value) => {
                let t = &mut self.threads[ti];
                match t.pc {
                    Pc::LoadCounter => {
                        t.reg = self.tail;
                        t.pc = Pc::LoadSeq;
                    }
                    Pc::LoadSeq => {
                        let seq = self.seq[t.reg % cap];
                        if seq == t.reg {
                            t.pc = Pc::Cas;
                        } else if (seq.wrapping_sub(t.reg) as isize) < 0 {
                            // Full: the try_send completes unsuccessfully.
                            t.op += 1;
                            t.pc = Pc::LoadCounter;
                        } else {
                            t.pc = Pc::LoadCounter;
                        }
                    }
                    Pc::Cas => {
                        if self.tail == t.reg {
                            self.tail += 1;
                            t.pc = Pc::SlotA;
                        } else {
                            t.reg = self.tail;
                            t.pc = Pc::LoadSeq;
                        }
                    }
                    Pc::SlotA => match variant {
                        Variant::Faithful => {
                            self.val[t.reg % cap] = Some(value);
                            t.pc = Pc::SlotB;
                        }
                        Variant::BrokenSeqOrder => {
                            // The mutation: publish before writing.
                            self.seq[t.reg % cap] = t.reg + 1;
                            t.pc = Pc::SlotB;
                        }
                    },
                    Pc::SlotB => {
                        match variant {
                            Variant::Faithful => self.seq[t.reg % cap] = t.reg + 1,
                            Variant::BrokenSeqOrder => self.val[t.reg % cap] = Some(value),
                        }
                        t.pushed.push(value);
                        t.op += 1;
                        t.pc = Pc::LoadCounter;
                    }
                }
            }
            Op::Recv | Op::RecvBatch(_) => {
                if let (Op::RecvBatch(max), Pc::LoadCounter, 0) =
                    (op, self.threads[ti].pc, self.threads[ti].batch_left)
                {
                    self.threads[ti].batch_left = max;
                }
                let t = &mut self.threads[ti];
                match t.pc {
                    Pc::LoadCounter => {
                        t.reg = self.head;
                        t.pc = Pc::LoadSeq;
                    }
                    Pc::LoadSeq => {
                        let seq = self.seq[t.reg % cap];
                        let filled = t.reg + 1;
                        if seq == filled {
                            t.pc = Pc::Cas;
                        } else if (seq.wrapping_sub(filled) as isize) < 0 {
                            // Empty: the op (or the rest of the batch)
                            // completes with nothing.
                            t.batch_left = 0;
                            t.op += 1;
                            t.pc = Pc::LoadCounter;
                        } else {
                            t.pc = Pc::LoadCounter;
                        }
                    }
                    Pc::Cas => {
                        if self.head == t.reg {
                            self.head += 1;
                            t.pc = Pc::SlotA;
                        } else {
                            t.reg = self.head;
                            t.pc = Pc::LoadSeq;
                        }
                    }
                    Pc::SlotA => {
                        // assume_init_read: the slot MUST be written.
                        let slot = t.reg % cap;
                        match self.val[slot].take() {
                            Some(v) => {
                                t.got.push(v);
                                t.pc = Pc::SlotB;
                            }
                            None => {
                                return Err(format!(
                                    "uninitialized read: thread {ti} consumed slot {slot} \
                                     (ticket {}) whose sequence counter was published \
                                     before the value was written",
                                    t.reg
                                ));
                            }
                        }
                    }
                    Pc::SlotB => {
                        self.seq[t.reg % cap] = t.reg + cap;
                        let more_batch = match op {
                            Op::RecvBatch(_) => {
                                t.batch_left -= 1;
                                t.batch_left > 0
                            }
                            _ => false,
                        };
                        if !more_batch {
                            t.batch_left = 0;
                            t.op += 1;
                        }
                        t.pc = Pc::LoadCounter;
                    }
                }
            }
        }
        Ok(())
    }

    /// Terminal invariant: delivered values plus ring remnants are
    /// exactly the successfully pushed values — nothing lost, nothing
    /// duplicated.
    fn check_terminal(&self) -> Result<(), String> {
        let mut pushed: Vec<u64> = self
            .threads
            .iter()
            .flat_map(|t| t.pushed.iter().copied())
            .collect();
        let mut seen: Vec<u64> = self
            .threads
            .iter()
            .flat_map(|t| t.got.iter().copied())
            .collect();
        seen.extend(self.val.iter().flatten().copied());
        pushed.sort_unstable();
        seen.sort_unstable();
        if pushed != seen {
            return Err(format!(
                "slot accounting broken: pushed {pushed:?} but delivered+remnant {seen:?}"
            ));
        }
        Ok(())
    }
}

/// Exhaustively explores every interleaving of `scripts` over a ring of
/// capacity `cap`, executing pushes per `variant`. Returns the search
/// counters, or the first caught violation (with the schedule that
/// produced it).
///
/// Scripts must use pairwise-distinct `Send` values — the terminal
/// multiset check relies on it to make duplication visible.
pub fn check_all_interleavings(
    cap: usize,
    scripts: &[Vec<Op>],
    variant: Variant,
) -> Result<InterleaveStats, String> {
    // Mirrors the real ring's minimum: below two slots the sequence
    // values of "filled by ticket t" and "recycled for ticket t + 1"
    // collide on the same slot and producers overwrite unread messages.
    // The checker found exactly that when run at cap = 1, which is why
    // `channel::bounded` now rounds up.
    assert!(cap >= 2, "the Vyukov ring needs at least two slots");
    let sends: Vec<u64> = scripts
        .iter()
        .flatten()
        .filter_map(|op| match op {
            Op::Send(v) => Some(*v),
            _ => None,
        })
        .collect();
    {
        let mut uniq = sends.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), sends.len(), "Send values must be distinct");
    }

    let mut stats = InterleaveStats::default();
    let mut visited: HashSet<u64> = HashSet::new();
    // DFS over (world, schedule) with whole-world fingerprint pruning.
    let root = World::new(cap, scripts);
    visited.insert(root.fingerprint());
    let mut stack: Vec<(World, Vec<usize>)> = vec![(root, Vec::new())];
    stats.states = 1;
    while let Some((world, schedule)) = stack.pop() {
        if world.done() {
            stats.terminals += 1;
            world
                .check_terminal()
                .map_err(|e| format!("{e} (schedule {schedule:?})"))?;
            continue;
        }
        for ti in 0..world.threads.len() {
            if world.threads[ti].op == world.threads[ti].script.len() {
                continue;
            }
            let mut next = world.clone();
            stats.steps += 1;
            next.step(ti, variant).map_err(|e| {
                let mut s = schedule.clone();
                s.push(ti);
                format!("{e} (schedule {s:?})")
            })?;
            if visited.insert(next.fingerprint()) {
                stats.states += 1;
                let mut s = schedule.clone();
                s.push(ti);
                stack.push((next, s));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The configurations the tests sweep: 2 and 3 virtual threads,
    /// capacities that force wrap-around and full/empty races, and the
    /// batch drain the hot loops use.
    fn configs() -> Vec<(usize, Vec<Vec<Op>>)> {
        vec![
            // Two producers race for tickets on the minimum two-slot ring
            // while a consumer drains: maximal contention, wrap-around.
            (
                2,
                vec![
                    vec![Op::Send(1), Op::Send(2)],
                    vec![Op::Send(3)],
                    vec![Op::Recv, Op::Recv, Op::Recv],
                ],
            ),
            // Producer vs. batch consumer on a capacity-2 ring.
            (
                2,
                vec![
                    vec![Op::Send(10), Op::Send(11), Op::Send(12)],
                    vec![Op::RecvBatch(4)],
                ],
            ),
            // Two consumers race for the same filled slot.
            (
                2,
                vec![
                    vec![Op::Send(7), Op::Send(8)],
                    vec![Op::Recv],
                    vec![Op::Recv],
                ],
            ),
        ]
    }

    #[test]
    fn faithful_ring_survives_every_interleaving() {
        for (cap, scripts) in configs() {
            let stats = check_all_interleavings(cap, &scripts, Variant::Faithful)
                .unwrap_or_else(|e| panic!("cap {cap}: {e}"));
            assert!(
                stats.terminals > 0,
                "cap {cap}: no execution ran to completion: {stats:?}"
            );
            assert!(
                stats.states > 100,
                "cap {cap}: suspiciously small interleaving space: {stats:?}"
            );
        }
    }

    /// The mutation check: the checker itself must be able to catch a
    /// broken protocol, or the green run above is meaningless. Swapping
    /// the value write and the sequence publish must produce a schedule
    /// where a consumer reads an unwritten slot.
    #[test]
    fn broken_seq_publication_order_is_caught() {
        let mut caught = 0;
        for (cap, scripts) in configs() {
            match check_all_interleavings(cap, &scripts, Variant::BrokenSeqOrder) {
                Ok(stats) => panic!(
                    "cap {cap}: the seeded seq-ordering bug survived {} states",
                    stats.states
                ),
                Err(e) => {
                    assert!(e.contains("uninitialized read"), "cap {cap}: {e}");
                    assert!(e.contains("schedule"), "cap {cap}: {e}");
                    caught += 1;
                }
            }
        }
        assert_eq!(caught, configs().len());
    }

    #[test]
    fn deterministic_state_counts() {
        // The DFS order and the FNV fingerprint are both fixed, so the
        // counters are bit-identical across runs — the same property the
        // engine-level model checker's CI gate builds on.
        let (cap, scripts) = &configs()[0];
        let a = check_all_interleavings(*cap, scripts, Variant::Faithful).unwrap();
        let b = check_all_interleavings(*cap, scripts, Variant::Faithful).unwrap();
        assert_eq!(a, b);
    }
}
