//! Minimal vendored shim of the `crossbeam::channel` API surface used by
//! this workspace: `bounded` / `unbounded` MPMC channels with cloneable
//! senders and receivers, `send` / `try_send`, and `recv` / `try_recv` /
//! `recv_timeout`.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `crossbeam`. Implementation: `Mutex<VecDeque>` +
//! condvars. It is slower than crossbeam's lock-free queues but the
//! threaded benchmarks only compare *relative* service designs, and both
//! sides of every comparison pay the same channel cost.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// The sending half. Cloneable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is bounded and full.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Creates a channel with unlimited buffering; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Errors
        /// only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails if the channel is full or dead.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Pops a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let h = thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..1000 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn dropping_all_senders_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
