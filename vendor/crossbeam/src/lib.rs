//! Minimal vendored shim of the `crossbeam::channel` API surface used by
//! this workspace: `bounded` / `unbounded` MPMC channels with cloneable
//! senders and receivers, `send` / `try_send`, `recv` / `try_recv` /
//! `recv_timeout`, and the batch extension `try_recv_batch`.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `crossbeam`. The implementation mirrors its design:
//!
//! * **Bounded** channels are a lock-free MPMC ring (the Vyukov
//!   sequence-number scheme): every slot carries an atomic sequence
//!   counter, producers claim tickets by CAS on a cache-line-padded tail
//!   and consumers on a padded head, so the uncontended hot path is one
//!   CAS plus two atomic loads — no mutex, no syscall.
//! * **Unbounded** channels keep a mutexed deque (growth requires
//!   reallocation, which a lock-free ring cannot do safely without an
//!   epoch collector), but wakeups are sleeper-gated and receivers can
//!   drain whole batches under one lock acquisition.
//!
//! Blocking is spin-then-park: a handful of spins and yields (tuned for
//! oversubscribed single-core hosts), then a condvar park. Parked
//! waiters use a short timed backstop wait and re-check, so waking is a
//! notify fast-path rather than a correctness requirement — producers
//! pay one relaxed load per send when nobody sleeps, and no store-load
//! fence ever sits on the ring path.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod interleave;

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::fmt;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Spins before parking; kept small because the benchmarks often run
    /// more threads than cores.
    const SPIN: usize = 24;
    /// Yields between spinning and parking.
    const YIELDS: usize = 2;
    /// Parked waiters re-check at this cadence even without a notify, so
    /// a lost wakeup costs bounded latency instead of a deadlock.
    const PARK_BACKSTOP: Duration = Duration::from_millis(1);

    /// Pads head/tail counters to their own cache line so producers and
    /// consumers do not false-share.
    #[repr(align(64))]
    struct CachePadded<T>(T);

    struct Slot<T> {
        /// Vyukov sequence number: `ticket` when free for the producer of
        /// that ticket, `ticket + 1` once filled, `ticket + cap` once the
        /// consumer recycled it.
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// Lock-free bounded MPMC ring.
    struct Ring<T> {
        slots: Box<[Slot<T>]>,
        cap: usize,
        tail: CachePadded<AtomicUsize>,
        head: CachePadded<AtomicUsize>,
    }

    impl<T> Ring<T> {
        fn new(cap: usize) -> Self {
            assert!(
                cap > 0,
                "bounded(0) rendezvous channels are not supported by the shim"
            );
            // The Vyukov scheme needs at least two slots: with one slot,
            // "filled by ticket t" (seq = t + 1) and "recycled for ticket
            // t + 1" (seq = t + 1) are the same sequence value on the
            // same slot, so a producer can claim and overwrite a message
            // the consumer never read. (Found by the interleaving checker
            // in `crate::interleave`.) `bounded(1)` therefore buffers up
            // to two messages; FIFO order and losslessness are preserved.
            let cap = cap.max(2);
            let slots: Box<[Slot<T>]> = (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            Ring {
                slots,
                cap,
                tail: CachePadded(AtomicUsize::new(0)),
                head: CachePadded(AtomicUsize::new(0)),
            }
        }

        /// Lock-free push; `Err(msg)` means the ring is full.
        fn push(&self, msg: T) -> Result<(), T> {
            let mut tail = self.tail.0.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[tail % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == tail {
                    match self.tail.0.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS made this thread the sole
                            // owner of ticket `tail`, and the Acquire load
                            // of `seq == tail` above proved the consumer
                            // recycled the slot — nobody reads or writes
                            // it until the Release store below publishes
                            // `tail + 1`.
                            unsafe { (*slot.value.get()).write(msg) };
                            slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if (seq.wrapping_sub(tail) as isize) < 0 {
                    // The consumer has not recycled this slot: full.
                    return Err(msg);
                } else {
                    tail = self.tail.0.load(Ordering::Relaxed);
                }
            }
        }

        /// Lock-free pop; `None` means the ring is (momentarily) empty.
        fn pop(&self) -> Option<T> {
            let mut head = self.head.0.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[head % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let filled = head.wrapping_add(1);
                if seq == filled {
                    match self.head.0.compare_exchange_weak(
                        head,
                        filled,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the Acquire load of `seq == head + 1`
                            // synchronizes with the producer's Release
                            // store *after* its value write, so the slot
                            // is initialized; the CAS made this thread the
                            // sole owner of the ticket, so the value is
                            // moved out exactly once before the Release
                            // store below recycles the slot.
                            let msg = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq
                                .store(head.wrapping_add(self.cap), Ordering::Release);
                            return Some(msg);
                        }
                        Err(h) => head = h,
                    }
                } else if (seq.wrapping_sub(filled) as isize) < 0 {
                    return None;
                } else {
                    head = self.head.0.load(Ordering::Relaxed);
                }
            }
        }

        fn len(&self) -> usize {
            // Head first: head <= tail holds at every instant and tail is
            // monotone, so a tail read *after* the head read can never be
            // below it — the subtraction cannot underflow the way the
            // opposite order can when a pop lands between the two loads.
            let head = self.head.0.load(Ordering::Relaxed);
            let tail = self.tail.0.load(Ordering::Relaxed);
            tail.wrapping_sub(head)
        }
    }

    impl<T> Drop for Ring<T> {
        fn drop(&mut self) {
            // Sole owner at this point: drain initialized slots.
            while self.pop().is_some() {}
        }
    }

    /// A parking spot: waiters register, re-check, then wait with a timed
    /// backstop; wakers skip the mutex entirely while nobody sleeps.
    struct Gate {
        lock: Mutex<()>,
        cv: Condvar,
        sleepers: AtomicUsize,
    }

    impl Gate {
        fn new() -> Self {
            Gate {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            }
        }

        /// Fast-path notify: one relaxed load when nobody is parked.
        fn wake_all(&self) {
            if self.sleepers.load(Ordering::Relaxed) > 0 {
                let _guard = self.lock.lock().unwrap();
                self.cv.notify_all();
            }
        }

        /// Parks until `ready` holds, `deadline` passes, or the backstop
        /// fires (callers loop). Returns whether `ready` held.
        fn park_unless<F: Fn() -> bool>(&self, ready: F, deadline: Option<Instant>) -> bool {
            let guard = self.lock.lock().unwrap();
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            // Re-check after registering: anything published before this
            // point is observed here, anything after will see the sleeper.
            if ready() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return true;
            }
            let wait = match deadline {
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .min(PARK_BACKSTOP),
                None => PARK_BACKSTOP,
            };
            let _guard = self.cv.wait_timeout(guard, wait).unwrap().0;
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            ready()
        }
    }

    enum Flavor<T> {
        Ring(Ring<T>),
        List(Mutex<VecDeque<T>>),
    }

    struct Chan<T> {
        flavor: Flavor<T>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Gate,
        not_full: Gate,
    }

    // SAFETY: the `UnsafeCell` slots are the only non-Sync state, and the
    // Vyukov ticket protocol hands each slot to exactly one thread at a
    // time (producer between CAS and seq publish, consumer between CAS
    // and recycle), so sharing `Chan` across threads moves `T`s without
    // aliasing — sound whenever `T: Send`. Nothing hands out `&T`, so
    // `T: Sync` is not required.
    unsafe impl<T: Send> Send for Chan<T> {}
    // SAFETY: as above — all shared access goes through atomics, mutexes,
    // or the slot-ownership protocol.
    unsafe impl<T: Send> Sync for Chan<T> {}

    impl<T> Chan<T> {
        fn push(&self, msg: T) -> Result<(), T> {
            match &self.flavor {
                Flavor::Ring(ring) => ring.push(msg),
                Flavor::List(deque) => {
                    deque.lock().unwrap().push_back(msg);
                    Ok(())
                }
            }
        }

        fn pop(&self) -> Option<T> {
            match &self.flavor {
                Flavor::Ring(ring) => ring.pop(),
                Flavor::List(deque) => deque.lock().unwrap().pop_front(),
            }
        }

        fn len(&self) -> usize {
            match &self.flavor {
                Flavor::Ring(ring) => ring.len(),
                Flavor::List(deque) => deque.lock().unwrap().len(),
            }
        }
    }

    /// The sending half. Cloneable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is bounded and full.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks when full. Backed by the lock-free ring.
    ///
    /// `bounded(1)` is backed by a two-slot ring (the minimum the Vyukov
    /// sequence scheme supports), so it can buffer one extra message
    /// before reporting full; ordering and delivery guarantees are
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not supported by
    /// the shim).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Flavor::Ring(Ring::new(cap)))
    }

    /// Creates a channel with unlimited buffering; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(Flavor::List(Mutex::new(VecDeque::new())))
    }

    fn make<T>(flavor: Flavor<T>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            flavor,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Gate::new(),
            not_full: Gate::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Errors
        /// only when every receiver has been dropped.
        pub fn send(&self, mut msg: T) -> Result<(), SendError<T>> {
            loop {
                match self.try_send(msg) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(m)) => return Err(SendError(m)),
                    Err(TrySendError::Full(m)) => {
                        msg = m;
                        for _ in 0..SPIN {
                            std::hint::spin_loop();
                        }
                        for _ in 0..YIELDS {
                            std::thread::yield_now();
                        }
                        let chan = &self.chan;
                        chan.not_full.park_unless(
                            || {
                                chan.receivers.load(Ordering::SeqCst) == 0
                                    || match &chan.flavor {
                                        Flavor::Ring(r) => r.len() < r.cap,
                                        Flavor::List(_) => true,
                                    }
                            },
                            None,
                        );
                    }
                }
            }
        }

        /// Sends without blocking; fails if the channel is full or dead.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            match self.chan.push(msg) {
                Ok(()) => {
                    self.chan.not_empty.wake_all();
                    Ok(())
                }
                Err(msg) => Err(TrySendError::Full(msg)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Number of messages currently buffered. For the bounded ring
        /// this is a relaxed snapshot — exact once the channel is quiet,
        /// monotonic enough for queue-depth accounting either way.
        pub fn len(&self) -> usize {
            self.chan.len()
        }

        /// Whether the channel holds no messages right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Pops a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Some(msg) = self.chan.pop() {
                self.chan.not_full.wake_all();
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                // Producers push before dropping: one more pop decides
                // between "drained" and "disconnected".
                match self.chan.pop() {
                    Some(msg) => {
                        self.chan.not_full.wake_all();
                        Ok(msg)
                    }
                    None => Err(TryRecvError::Disconnected),
                }
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains up to `max` ready messages into `out` without blocking;
        /// returns how many were moved. The unbounded flavor takes the
        /// queue lock once for the whole batch — this is the call the hot
        /// loops use to amortize synchronization over entire batches.
        pub fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
            let drained = match &self.chan.flavor {
                Flavor::Ring(ring) => {
                    let mut n = 0;
                    while n < max {
                        match ring.pop() {
                            Some(msg) => {
                                out.push(msg);
                                n += 1;
                            }
                            None => break,
                        }
                    }
                    n
                }
                Flavor::List(deque) => {
                    let mut q = deque.lock().unwrap();
                    let n = q.len().min(max);
                    out.extend(q.drain(..n));
                    n
                }
            };
            if drained > 0 {
                self.chan.not_full.wake_all();
            }
            drained
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            match self.recv_deadline(None) {
                Ok(msg) => Ok(msg),
                Err(RecvTimeoutError::Disconnected) => Err(RecvError),
                Err(RecvTimeoutError::Timeout) => unreachable!("no deadline was set"),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Some(Instant::now() + timeout))
        }

        fn recv_deadline(&self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
            loop {
                for _ in 0..SPIN {
                    match self.try_recv() {
                        Ok(msg) => return Ok(msg),
                        Err(TryRecvError::Disconnected) => {
                            return Err(RecvTimeoutError::Disconnected)
                        }
                        Err(TryRecvError::Empty) => std::hint::spin_loop(),
                    }
                }
                for _ in 0..YIELDS {
                    std::thread::yield_now();
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
                let chan = &self.chan;
                chan.not_empty.park_unless(
                    || chan.len() > 0 || chan.senders.load(Ordering::SeqCst) == 0,
                    deadline,
                );
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.not_empty.wake_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.not_full.wake_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let h = thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..1000 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_roundtrip_across_threads_fifo_per_producer() {
            let (tx, rx) = bounded::<u64>(8);
            let h = thread::spawn(move || {
                for i in 0..10_000 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..10_000 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..10_000).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_one_never_overwrites() {
            // Regression: with a single slot, ticket 1's free check
            // (seq == 1) is indistinguishable from ticket 0's filled
            // state, letting the second send overwrite the unread first
            // message — after which the consumer could never observe a
            // "filled" sequence again. The ring now refuses to go below
            // two slots.
            let (tx, rx) = bounded::<u8>(1);
            tx.try_send(1).unwrap();
            let _ = tx.try_send(2); // may report Full; must not clobber
            assert_eq!(rx.try_recv(), Ok(1));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn dropping_all_senders_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn final_message_survives_sender_drop() {
            let (tx, rx) = bounded::<u8>(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_recv_batch_drains_in_order() {
            for (tx, rx) in [bounded::<u32>(64), unbounded::<u32>()] {
                for i in 0..40 {
                    tx.send(i).unwrap();
                }
                let mut out = Vec::new();
                assert_eq!(rx.try_recv_batch(&mut out, 16), 16);
                assert_eq!(rx.try_recv_batch(&mut out, usize::MAX), 24);
                assert_eq!(out, (0..40).collect::<Vec<_>>());
                assert_eq!(rx.try_recv_batch(&mut out, 8), 0);
                assert_eq!(rx.len(), 0);
            }
        }

        #[test]
        fn len_tracks_backlog() {
            let (tx, rx) = bounded::<u8>(8);
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            rx.recv().unwrap();
            assert_eq!(rx.len(), 1);
        }

        #[test]
        fn blocking_send_resumes_when_space_frees() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let h = thread::spawn(move || tx.send(3).map(|_| 3u32).unwrap());
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(h.join().unwrap(), 3);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn mpmc_contended_ring_loses_nothing() {
            const PRODUCERS: usize = 4;
            const PER_PRODUCER: u64 = 5_000;
            let (tx, rx) = bounded::<u64>(32);
            let mut handles = Vec::new();
            for p in 0..PRODUCERS as u64 {
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send(p * PER_PRODUCER + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match rx.recv() {
                                Ok(v) => got.push(v),
                                Err(RecvError) => return got,
                            }
                        }
                    })
                })
                .collect();
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            let expect: Vec<u64> = (0..PRODUCERS as u64 * PER_PRODUCER).collect();
            assert_eq!(all, expect, "every message delivered exactly once");
        }
    }
}
