//! Minimal vendored shim of the `rand` 0.9 API surface used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::{random, random_range}` methods over integer and float ranges.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `rand`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and of ample quality for the
//! simulator's jitter/clock/workload draws. It is NOT the same stream as
//! upstream `StdRng` (ChaCha12), which is irrelevant here: the workspace
//! only relies on *determinism per seed*, never on a specific stream.

#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly like upstream `rand_core`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over `T`'s full domain
    /// (`[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain.
pub trait StandardUniform {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a `T` can be drawn from (`Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` where `1 <= span <= 2^64`, via
/// Lemire's widening multiply. The residual bias is at most `span / 2^64`
/// of one draw — immaterial for simulation jitter/clock/workload use.
fn uniform_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!((1..=(1u128 << 64)).contains(&span));
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_int_ranges {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = uniform_below(rng, span);
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                // span == 0 would mean the full 128-bit domain; with <= 64-bit
                // types span fits in u128 and is never 0 here.
                let off = uniform_below(rng, span);
                (start as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )+};
}

impl_int_ranges!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u: f64 = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for integer seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let b = rng.random_range(0..100u8);
            assert!(b < 100);
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match rng.random_range(0u8..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn single_value_ranges_work() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(5u64..=5), 5);
        assert_eq!(rng.random_range(-3i64..=-3), -3);
    }
}
