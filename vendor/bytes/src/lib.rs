//! Minimal vendored shim of `bytes::Bytes`: an immutable, cheaply
//! cloneable byte buffer. The build container has no crates.io access,
//! so this crate stands in for the real `bytes`. Cheap cloning is the
//! property the workspace relies on (update values fan out to many
//! simulated processes); it is provided by `Arc<[u8]>`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer (subset of `bytes::Bytes`).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(16) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 16 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(&*Bytes::from_static(b"v"), b"v");
    }
}
