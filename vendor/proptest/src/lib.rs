//! Minimal vendored shim of the `proptest` API surface used by this
//! workspace: the `proptest!` test macro, `prop_assert!` /
//! `prop_assert_eq!`, range / tuple / `collection::vec` / `bool::ANY`
//! strategies.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `proptest`. Semantics: each property runs a fixed number
//! of deterministically seeded random cases (no shrinking — a failing
//! case prints its panic message directly). Case count defaults to 64 and
//! can be raised with the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generator of random test inputs.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply samples a value from an RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )+};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Uniform `true` / `false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The strategy producing uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::Rng::random(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Length specification for [`vec()`](fn@vec): an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length is drawn from `size`
    /// and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.min + 1 >= self.size.max {
                self.size.min
            } else {
                rand::Rng::random_range(rng, self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Number of random cases each property runs (`PROPTEST_CASES`
/// environment variable, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test, per-case RNG: seeded from the test's name and
/// the case index so every run explores the same inputs.
pub fn test_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs a property as a set of deterministically seeded random cases.
///
/// Supported form (one or more functions per block):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u8..5, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a name the property bodies use.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the property bodies use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the property bodies use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vectors_sample_in_bounds(
            x in 1u64..50,
            signed in -10i64..10,
            flags in crate::collection::vec(crate::bool::ANY, 3),
            pairs in crate::collection::vec((0u8..5, 0u16..200), 1..40),
        ) {
            prop_assert!((1..50).contains(&x));
            prop_assert!((-10..10).contains(&signed));
            prop_assert_eq!(flags.len(), 3);
            prop_assert!(!pairs.is_empty() && pairs.len() < 40);
            for (a, b) in pairs {
                prop_assert!(a < 5 && b < 200);
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let s = 0u64..1000;
        let a = s.generate(&mut crate::test_rng("t", 3));
        let b = s.generate(&mut crate::test_rng("t", 3));
        let c = s.generate(&mut crate::test_rng("t", 4));
        assert_eq!(a, b);
        let d = s.generate(&mut crate::test_rng("other", 3));
        // Different case or name gives an independent draw (may collide,
        // but not both).
        assert!(a != c || a != d);
    }
}
